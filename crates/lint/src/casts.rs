//! Rule `narrowing-cast`: silent truncation in the codec files.
//!
//! The codecs (`crates/trace/src/codec.rs`, `crates/sim/src/stats.rs`)
//! decode attacker-shaped bytes into counts and lengths; an `x as usize`
//! on a hostile `u64` silently truncates on 32-bit targets and turns a
//! corrupt length into a wrong-but-plausible one. Decoders must use
//! `try_from` with an explicit error path; the few masked-value casts
//! (e.g. `(v & 0x7F) as u8`) carry a reasoned `allow(narrowing-cast)`.
//!
//! Widening or same-width casts (`as u64`, `as i64`, `as f64`) are not
//! flagged.

use crate::findings::{rules, Finding};
use crate::source::{AnalyzedFile, DETERMINISM_CRATES};

/// Target types an `as` cast may truncate into.
const NARROW_TYPES: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];

/// Files the audit covers (matched on the path's final component).
const AUDITED_FILES: &[&str] = &["codec.rs", "stats.rs"];

/// Runs the pass over one file.
pub fn check(file: &AnalyzedFile) -> Vec<Finding> {
    if !DETERMINISM_CRATES.contains(&file.crate_name.as_str()) {
        return Vec::new();
    }
    let basename = file.path.rsplit('/').next().unwrap_or("");
    if !AUDITED_FILES.contains(&basename) {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        let line_no = idx as u32 + 1;
        if file.is_test_line(line_no) {
            continue;
        }
        let mut from = 0;
        while let Some(found) = line[from..].find(" as ") {
            let at = from + found;
            from = at + " as ".len();
            let target: String = line[from..]
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if NARROW_TYPES.contains(&target.as_str()) {
                findings.push(Finding::new(
                    rules::NARROWING_CAST,
                    &file.path,
                    line_no,
                    format!(
                        "narrowing `as {target}` in a codec — use `{target}::try_from` \
                         with an explicit error path, or annotate why the value fits"
                    ),
                ));
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn findings_at(path: &str, content: &str) -> Vec<Finding> {
        check(&AnalyzedFile::new(&SourceFile {
            path: path.to_string(),
            content: content.to_string(),
        }))
    }

    #[test]
    fn flags_narrowing_not_widening() {
        let src = "\
fn f(x: u64) -> usize {
    let _wide = x as u64;
    let _float = x as f64;
    x as usize
}
";
        let f = findings_at("crates/trace/src/codec.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 4);
        assert!(f[0].message.contains("usize::try_from"));
    }

    #[test]
    fn only_audited_files_are_checked() {
        let src = "fn f(x: u64) -> u8 { x as u8 }\n";
        assert_eq!(findings_at("crates/sim/src/stats.rs", src).len(), 1);
        assert!(findings_at("crates/sim/src/l2.rs", src).is_empty());
        assert!(findings_at("crates/bench/src/codec.rs", src).is_empty());
    }

    #[test]
    fn strings_comments_and_test_code_are_inert() {
        let src = "\
// reinterpret x as u8 would be wrong
fn f() -> &'static str { \"x as u8\" }
#[cfg(test)]
mod tests {
    fn t(x: u64) -> u8 { x as u8 }
}
";
        assert!(findings_at("crates/trace/src/codec.rs", src).is_empty());
    }
}
