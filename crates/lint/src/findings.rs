//! Findings: the unit every rule pass produces, suppression against
//! `tifs-lint: allow` annotations, and the human / JSON renderings.

use crate::source::AnalyzedFile;

/// Rule names, also the names accepted inside `allow(…)`.
pub mod rules {
    /// Iteration over `HashMap`/`HashSet` in covered code.
    pub const NONDET_ITERATION: &str = "nondet-iteration";
    /// `Instant::now` / `SystemTime::now` / `env::var` outside the
    /// allowlist.
    pub const WALL_CLOCK: &str = "wall-clock";
    /// A narrowing `as` cast in the codec files.
    pub const NARROWING_CAST: &str = "narrowing-cast";
    /// Versioned codec schema drifted from `crates/lint/schema.lock`.
    pub const SCHEMA_DRIFT: &str = "schema-drift";
    /// A malformed `tifs-lint: allow` annotation (no rule, unknown rule,
    /// or missing reason).
    pub const BAD_ALLOW: &str = "bad-allow";
    /// An annotation that suppresses nothing.
    pub const UNUSED_ALLOW: &str = "unused-allow";

    /// Every rule, for validation and docs.
    pub const ALL: &[&str] = &[
        NONDET_ITERATION,
        WALL_CLOCK,
        NARROWING_CAST,
        SCHEMA_DRIFT,
        BAD_ALLOW,
        UNUSED_ALLOW,
    ];
}

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (one of [`rules::ALL`]).
    pub rule: &'static str,
    /// Repo-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable message.
    pub message: String,
}

impl Finding {
    /// Builds a finding.
    pub fn new(rule: &'static str, path: &str, line: u32, message: String) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line,
            message,
        }
    }
}

/// Applies the file's `allow` annotations to `findings` (dropping the
/// suppressed ones), then appends annotation-hygiene findings: a
/// `bad-allow` for malformed annotations and an `unused-allow` for
/// annotations that suppressed nothing. Hygiene findings are not
/// themselves suppressible — fixing them means fixing the annotation.
pub fn apply_allows(file: &AnalyzedFile, findings: Vec<Finding>) -> Vec<Finding> {
    let mut used = vec![false; file.allows.len()];
    let mut kept = Vec::new();
    for finding in findings {
        let suppressed =
            file.allows.iter().enumerate().find(|(_, a)| {
                a.rule == finding.rule && a.target_line == finding.line && a.has_reason
            });
        match suppressed {
            Some((i, _)) => used[i] = true,
            None => kept.push(finding),
        }
    }
    for (allow, used) in file.allows.iter().zip(&used) {
        if allow.rule.is_empty() || !rules::ALL.contains(&allow.rule.as_str()) {
            kept.push(Finding::new(
                rules::BAD_ALLOW,
                &file.path,
                allow.line,
                format!(
                    "unknown rule `{}` in tifs-lint allow annotation (known: {})",
                    allow.rule,
                    rules::ALL.join(", ")
                ),
            ));
        } else if !allow.has_reason {
            kept.push(Finding::new(
                rules::BAD_ALLOW,
                &file.path,
                allow.line,
                format!(
                    "allow({}) without a reason — write `// tifs-lint: allow({}) — <why this is sound>`",
                    allow.rule, allow.rule
                ),
            ));
        } else if !used {
            kept.push(Finding::new(
                rules::UNUSED_ALLOW,
                &file.path,
                allow.line,
                format!(
                    "allow({}) suppresses nothing on line {} — remove the stale annotation",
                    allow.rule, allow.target_line
                ),
            ));
        }
    }
    kept
}

/// Sorts findings into the canonical (path, line, rule, message) order
/// so output bytes are deterministic.
pub fn sort(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
            b.path.as_str(),
            b.line,
            b.rule,
            b.message.as_str(),
        ))
    });
}

/// Renders the human-readable report, one finding per line.
pub fn render_human(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n",
            f.path, f.line, f.rule, f.message
        ));
    }
    if findings.is_empty() {
        out.push_str("tifs-lint: clean (0 findings)\n");
    } else {
        out.push_str(&format!("tifs-lint: {} finding(s)\n", findings.len()));
    }
    out
}

/// Renders the machine-readable JSON report (canonical key order, `\n`
/// line termination, no trailing spaces — stable bytes for artifacts).
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"tool\": \"tifs-lint\",\n  \"format_version\": 1,\n");
    out.push_str(&format!("  \"total\": {},\n", findings.len()));
    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}}}",
            json_escape(f.rule),
            json_escape(&f.path),
            f.line,
            json_escape(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Minimal JSON string escaping (the same dialect as the results sink:
/// quotes, backslashes, and control characters).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{AnalyzedFile, SourceFile};

    fn analyzed(content: &str) -> AnalyzedFile {
        AnalyzedFile::new(&SourceFile {
            path: "crates/sim/src/x.rs".to_string(),
            content: content.to_string(),
        })
    }

    #[test]
    fn allow_suppresses_matching_rule_and_line() {
        let f = analyzed("let x = 1; // tifs-lint: allow(wall-clock) — test\n");
        let findings = vec![
            Finding::new(rules::WALL_CLOCK, &f.path, 1, "clock".into()),
            Finding::new(rules::NONDET_ITERATION, &f.path, 1, "iter".into()),
        ];
        let kept = apply_allows(&f, findings);
        assert_eq!(kept.len(), 1, "only the matching rule is suppressed");
        assert_eq!(kept[0].rule, rules::NONDET_ITERATION);
    }

    #[test]
    fn reasonless_allow_is_flagged_and_suppresses_nothing() {
        let f = analyzed("let x = 1; // tifs-lint: allow(wall-clock)\n");
        let findings = vec![Finding::new(rules::WALL_CLOCK, &f.path, 1, "clock".into())];
        let kept = apply_allows(&f, findings);
        assert_eq!(kept.len(), 2);
        assert!(kept.iter().any(|k| k.rule == rules::WALL_CLOCK));
        assert!(kept.iter().any(|k| k.rule == rules::BAD_ALLOW));
    }

    #[test]
    fn unused_and_unknown_allows_are_flagged() {
        let f = analyzed(
            "let x = 1; // tifs-lint: allow(wall-clock) — nothing here\n\
             let y = 2; // tifs-lint: allow(made-up-rule) — whatever\n",
        );
        let kept = apply_allows(&f, Vec::new());
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].rule, rules::UNUSED_ALLOW);
        assert_eq!(kept[1].rule, rules::BAD_ALLOW);
    }

    #[test]
    fn json_is_well_formed_ish() {
        let findings = vec![Finding::new(
            rules::WALL_CLOCK,
            "a/b.rs",
            3,
            "say \"no\"".into(),
        )];
        let json = render_json(&findings);
        assert!(json.contains("\"total\": 1"));
        assert!(json.contains("\\\"no\\\""));
        assert!(json.ends_with("}\n"));
        let empty = render_json(&[]);
        assert!(empty.contains("\"findings\": []"));
    }
}
