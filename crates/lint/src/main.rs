//! The `tifs-lint` CLI. See the library docs ([`tifs_lint`]) for what
//! the rules check; this binary only wires the workspace scan, the
//! schema lock, and the output formats together.
//!
//! ```text
//! tifs-lint [--root <DIR>] [--json] [--update-schema-lock]
//! ```
//!
//! * Human-readable findings always go to **stderr**; `--json` writes
//!   the machine-readable report to **stdout** (CI uploads it as an
//!   artifact).
//! * `--update-schema-lock` regenerates `crates/lint/schema.lock` from
//!   the current tree instead of linting.
//! * Exit codes: `0` clean, `1` findings, `2` usage/IO error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use tifs_lint::{analyze, generate_lock, render_human, render_json, scan_workspace};

const USAGE: &str = "usage: tifs-lint [--root <DIR>] [--json] [--update-schema-lock]";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut update_lock = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("tifs-lint: --root needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--update-schema-lock" => update_lock = true,
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("tifs-lint: unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    if !root.join("crates").is_dir() {
        eprintln!(
            "tifs-lint: `{}` does not look like the workspace root (no crates/); \
             run from the repo root or pass --root",
            root.display()
        );
        return ExitCode::from(2);
    }

    let files = match scan_workspace(&root) {
        Ok(files) => files,
        Err(err) => {
            eprintln!("tifs-lint: workspace scan failed: {err}");
            return ExitCode::from(2);
        }
    };

    let lock_path = root.join("crates").join("lint").join("schema.lock");
    if update_lock {
        let lock = generate_lock(&files);
        if let Err(err) = std::fs::write(&lock_path, &lock) {
            eprintln!("tifs-lint: cannot write {}: {err}", lock_path.display());
            return ExitCode::from(2);
        }
        eprintln!("tifs-lint: wrote {}", lock_path.display());
        return ExitCode::SUCCESS;
    }

    let lock = std::fs::read_to_string(&lock_path).ok();
    let findings = analyze(&files, lock.as_deref());
    eprint!("{}", render_human(&findings));
    if json {
        print!("{}", render_json(&findings));
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
