//! A small comment/string/raw-string-aware Rust scanner.
//!
//! The rule passes in this crate are lexical: they look for tokens like
//! `HashMap`, `.keys()`, or `Instant::now` in source text. Doing that on
//! raw text would fire inside doc comments, test-fixture strings, and
//! error messages, so every pass works on a *masked* view of the file
//! instead: the same byte string with the contents of every comment,
//! string literal, raw string literal, byte string, and char literal
//! blanked to spaces. Masking replaces bytes one-for-one (newlines are
//! kept), so byte offsets, line numbers, and column numbers in the
//! masked view are identical to the original.
//!
//! Comments are captured on the side (with their byte offsets) because
//! the `// tifs-lint: allow(<rule>) — <reason>` suppression annotations
//! live in comments.
//!
//! The scanner understands:
//!
//! * line comments (`//`, `///`, `//!`) and *nested* block comments;
//! * string literals with escapes, including `\"` and `\\`;
//! * raw strings `r"…"` / `r#"…"#` with any number of hashes, plus the
//!   `b`, `br`, `c`, and `cr` prefixed forms (prefixes are only honored
//!   when they are a whole identifier, so `bar"x"` masks only `"x"`);
//! * char literals vs. lifetimes (`'a'` is a literal, `'a` is not).

/// A comment captured during masking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comment {
    /// Byte offset of the comment opener (`//` or `/*`) in the file.
    pub start: usize,
    /// Raw comment text, including the opener (and closer, for block
    /// comments).
    pub text: String,
}

/// The masked view of one source file.
#[derive(Clone, Debug)]
pub struct Masked {
    /// The source with comment and literal contents blanked to spaces.
    /// Exactly as long as the input, with newlines preserved, so every
    /// offset in it is an offset in the original.
    pub code: String,
    /// Every comment in the file, in order of appearance.
    pub comments: Vec<Comment>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Blanks `out[from..to]` to spaces, leaving newlines in place so line
/// numbers survive.
fn blank(out: &mut [u8], from: usize, to: usize) {
    let to = to.min(out.len());
    if from >= to {
        return;
    }
    for b in &mut out[from..to] {
        if *b != b'\n' {
            *b = b' ';
        }
    }
}

/// Masks one source file. See the module docs for what is blanked.
pub fn mask(source: &str) -> Masked {
    let bytes = source.as_bytes();
    let mut out = bytes.to_vec();
    let mut comments = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                comments.push(Comment {
                    start,
                    text: source[start..i].to_string(),
                });
                blank(&mut out, start, i);
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comments nest in Rust.
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                comments.push(Comment {
                    start,
                    text: source[start..i].to_string(),
                });
                blank(&mut out, start, i);
            }
            b'"' => {
                let end = consume_string(bytes, i);
                // Keep the delimiting quotes, blank the contents.
                blank(&mut out, i + 1, end.saturating_sub(1));
                i = end;
            }
            b'\'' => {
                i = consume_char_or_lifetime(bytes, &mut out, i);
            }
            b if is_ident_start(b) => {
                let start = i;
                while i < bytes.len() && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                let ident = &source[start..i];
                if matches!(ident, "r" | "b" | "br" | "c" | "cr") {
                    let raw = matches!(ident, "r" | "br" | "cr");
                    let mut j = i;
                    let mut hashes = 0usize;
                    while raw && bytes.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&b'"') {
                        if raw {
                            // Blank the whole literal, delimiters
                            // included: a surviving `#` after a blanked
                            // closing quote would leave the opener
                            // unbalanced.
                            let end = consume_raw_string(bytes, j, hashes);
                            blank(&mut out, start, end);
                            i = end;
                        } else {
                            // `b"…"` / `c"…"`: a plain escaped string.
                            let end = consume_string(bytes, j);
                            blank(&mut out, j + 1, end.saturating_sub(1));
                            i = end;
                        }
                    }
                }
            }
            _ => i += 1,
        }
    }
    Masked {
        code: String::from_utf8(out).expect("masking only writes ASCII spaces"),
        comments,
    }
}

/// Consumes a `"…"` literal starting at the opening quote `at`,
/// honoring backslash escapes. Returns the index just past the closing
/// quote (or the end of input when unterminated).
fn consume_string(bytes: &[u8], at: usize) -> usize {
    let mut i = at + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    bytes.len()
}

/// Consumes a raw literal whose opening quote sits at `at` and that is
/// closed by a quote followed by `hashes` hash signs. Returns the index
/// just past the closing delimiter.
fn consume_raw_string(bytes: &[u8], at: usize, hashes: usize) -> usize {
    let mut i = at + 1;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let following = bytes[i + 1..].iter().take_while(|&&b| b == b'#').count();
            if following >= hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    bytes.len()
}

/// Distinguishes a char literal from a lifetime at a `'` and blanks the
/// literal's contents. Returns the index to continue scanning from.
fn consume_char_or_lifetime(bytes: &[u8], out: &mut [u8], at: usize) -> usize {
    let next = match bytes.get(at + 1) {
        Some(&b) => b,
        None => return at + 1,
    };
    if next == b'\\' {
        // Escaped char literal: scan to the closing quote.
        let mut i = at + 2;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 2,
                b'\'' => {
                    blank(out, at + 1, i);
                    return i + 1;
                }
                _ => i += 1,
            }
        }
        return bytes.len();
    }
    // One (possibly multi-byte) character followed by a quote is a char
    // literal; anything else is a lifetime (or a stray quote).
    let close = at + 1 + utf8_len(next);
    if next != b'\'' && bytes.get(close) == Some(&b'\'') {
        blank(out, at + 1, close);
        return close + 1;
    }
    at + 1
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> String {
        mask(src).code
    }

    #[test]
    fn masks_line_and_block_comments() {
        let src = "let a = 1; // HashMap here\nlet b = 2; /* keys()\n values() */ let c = 3;";
        let code = code_of(src);
        assert!(!code.contains("HashMap"));
        assert!(!code.contains("keys"));
        assert!(code.contains("let a = 1;"));
        assert!(code.contains("let c = 3;"));
        assert_eq!(code.len(), src.len());
        assert_eq!(
            code.matches('\n').count(),
            src.matches('\n').count(),
            "newlines must survive masking"
        );
    }

    #[test]
    fn masks_nested_block_comments() {
        let src = "a /* outer /* HashMap */ still comment */ b";
        let code = code_of(src);
        assert!(!code.contains("HashMap"));
        assert!(!code.contains("still"));
        assert!(code.starts_with('a'));
        assert!(code.ends_with('b'));
    }

    #[test]
    fn masks_string_contents_but_not_code() {
        let src = r#"let s = "Instant::now inside"; let t = Instant::now();"#;
        let code = code_of(src);
        assert_eq!(code.matches("Instant::now").count(), 1);
        assert!(code.contains("let t = Instant::now();"));
    }

    #[test]
    fn masks_raw_and_byte_strings() {
        let src = r##"let a = r#"HashMap "quoted" .keys()"#; let b = br"env::var"; let c = b"SystemTime"; ok"##;
        let code = code_of(src);
        assert!(!code.contains("HashMap"));
        assert!(!code.contains("env::var"));
        assert!(!code.contains("SystemTime"));
        assert!(code.contains("ok"), "code after literals survives: {code}");
    }

    #[test]
    fn raw_string_with_hashes_does_not_desync() {
        let src = r###"let a = r##"x"# not closed yet"##; let keep = 1;"###;
        let code = code_of(src);
        assert!(!code.contains("not closed"));
        assert!(code.contains("let keep = 1;"), "desynced: {code}");
    }

    #[test]
    fn identifier_ending_in_r_is_not_a_raw_string_prefix() {
        let src = r#"let bar = par("HashMap");"#;
        let code = code_of(src);
        assert!(code.contains("let bar = par("));
        assert!(!code.contains("HashMap"));
    }

    #[test]
    fn char_literals_masked_lifetimes_kept() {
        let src = "fn f<'a>(x: &'a str) { let c = 'k'; let e = '\\n'; }";
        let code = code_of(src);
        assert!(code.contains("<'a>"), "lifetime must survive: {code}");
        assert!(code.contains("&'a str"));
        assert!(!code.contains('k'), "char literal contents blanked");
        let src2 = "let q = '\"'; let s = \"HashMap\";";
        let code2 = code_of(src2);
        assert!(
            !code2.contains("HashMap"),
            "quote in char literal must not desync strings: {code2}"
        );
    }

    #[test]
    fn comments_are_captured_with_offsets() {
        let src = "let a = 1; // tifs-lint: allow(x) — y\n/* block */";
        let m = mask(src);
        assert_eq!(m.comments.len(), 2);
        assert_eq!(m.comments[0].text, "// tifs-lint: allow(x) — y");
        assert_eq!(m.comments[0].start, 11);
        assert_eq!(m.comments[1].text, "/* block */");
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let src = r#"let s = "a\"HashMap\"b"; let m = HashMap::new();"#;
        let code = code_of(src);
        assert_eq!(code.matches("HashMap").count(), 1);
    }

    #[test]
    fn comment_opener_inside_string_is_inert() {
        let src = r#"let url = "https://example.com/*x*/"; let m = HashMap::new();"#;
        let code = code_of(src);
        assert_eq!(code.matches("HashMap").count(), 1);
        assert!(mask(src).comments.is_empty());
    }
}
