//! Rule `wall-clock`: ambient-entropy sources in covered library code.
//!
//! `Instant::now` / `SystemTime::now` make results depend on when the
//! run happened; `env::var` makes them depend on the caller's shell.
//! Both break the byte-determinism the golden `results/` files rely on,
//! so they are banned outside an allowlist:
//!
//! * the `bench` crate and the `rand`/`criterion`/`proptest` shims are
//!   not scanned at all (a timing harness measures wall-clock time by
//!   definition — see [`crate::source::ENTROPY_CRATES`]);
//! * binaries (`src/bin/`) and test code may read the clock and the
//!   environment freely;
//! * lines mentioning a `TIFS_*` knob are auto-allowed: those are the
//!   documented configuration surface (`TIFS_THREADS`, `TIFS_SCALE`, …)
//!   and the knobs never feed simulated state;
//! * anything else needs a reasoned `allow(wall-clock)` annotation.

use crate::findings::{rules, Finding};
use crate::source::{AnalyzedFile, FileKind, ENTROPY_CRATES};

/// Banned call tokens and what to say about each.
const SOURCES: &[(&str, &str)] = &[
    ("Instant::now", "reads the monotonic clock"),
    ("SystemTime::now", "reads the wall clock"),
    ("env::var", "reads the process environment"),
];

/// Runs the pass over one file.
pub fn check(file: &AnalyzedFile) -> Vec<Finding> {
    if !ENTROPY_CRATES.contains(&file.crate_name.as_str()) {
        return Vec::new();
    }
    if matches!(file.kind, FileKind::Bin | FileKind::Tests) {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        let line_no = idx as u32 + 1;
        if file.is_test_line(line_no) {
            continue;
        }
        for (token, what) in SOURCES {
            if !line.contains(token) {
                continue;
            }
            // Documented knob sites name their `TIFS_*` variable on the
            // same line (in the raw view: the literal is masked in code).
            let raw = file.raw_lines.get(idx).map(String::as_str).unwrap_or("");
            if raw.contains("TIFS_") {
                continue;
            }
            findings.push(Finding::new(
                rules::WALL_CLOCK,
                &file.path,
                line_no,
                format!(
                    "`{token}` {what} in deterministic library code — route through a \
                     documented TIFS_* knob or annotate why this cannot affect results"
                ),
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn findings_at(path: &str, content: &str) -> Vec<Finding> {
        check(&AnalyzedFile::new(&SourceFile {
            path: path.to_string(),
            content: content.to_string(),
        }))
    }

    #[test]
    fn flags_clock_and_env_in_lib_code() {
        let src = "\
fn f() -> bool {
    let _t = std::time::Instant::now();
    std::env::var(\"SOMETHING\").is_ok()
}
";
        let f = findings_at("crates/sim/src/x.rs", src);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].line, 2);
        assert_eq!(f[1].line, 3);
    }

    #[test]
    fn tifs_knob_lines_bins_and_tests_are_allowed() {
        let knob = "fn f() -> bool { std::env::var(\"TIFS_THREADS\").is_ok() }\n";
        assert!(findings_at("crates/experiments/src/x.rs", knob).is_empty());
        let clock = "fn main() { let _ = std::time::Instant::now(); }\n";
        assert!(findings_at("crates/experiments/src/bin/fig.rs", clock).is_empty());
        assert!(findings_at("crates/sim/tests/t.rs", clock).is_empty());
        assert!(findings_at("crates/bench/src/lib.rs", clock).is_empty());
    }

    #[test]
    fn mentions_in_strings_and_comments_are_inert() {
        let src = "\
/// Unlike Instant::now-based timing, cycles are simulated.
fn f() -> &'static str {
    \"set via env::var\"
}
";
        assert!(findings_at("crates/sim/src/x.rs", src).is_empty());
    }
}
