//! Rule `nondet-iteration`: iteration over `std::collections::HashMap`
//! / `HashSet` in covered code.
//!
//! Iteration order of the std hash tables is seeded per-process, so any
//! result that depends on it (report counters, grammar rule order,
//! merged warm sets) silently varies run to run — the class of bug PR 1
//! fixed four times. Covered crates must iterate `BlockMap` /
//! `DigramIndex` / sorted structures instead, or sort before iterating
//! and say so in an `allow` annotation.
//!
//! The pass is lexical and file-local, tuned to this repo's idiom: it
//! first registers every identifier the file binds to a `HashMap` /
//! `HashSet` (let bindings with a type annotation or a `HashMap::…`
//! initializer, struct fields, fn params), then flags iteration-shaped
//! uses of those identifiers — `.iter()`, `.keys()`, `.values()`,
//! `.drain(…)`, `.into_iter()`, `.retain(…)` calls and `for … in`
//! loops over them.

use crate::findings::{rules, Finding};
use crate::source::{AnalyzedFile, DETERMINISM_CRATES};

/// Method suffixes that enumerate a hash table in seed order.
const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".into_iter()",
    ".retain(",
];

/// Runs the pass over one file.
pub fn check(file: &AnalyzedFile) -> Vec<Finding> {
    if !DETERMINISM_CRATES.contains(&file.crate_name.as_str()) {
        return Vec::new();
    }
    let tables = registered_tables(file);
    if tables.is_empty() {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        let line_no = idx as u32 + 1;
        if file.is_test_line(line_no) {
            continue;
        }
        for method in ITER_METHODS {
            let mut from = 0;
            while let Some(found) = line[from..].find(method) {
                let at = from + found;
                if let Some(name) = receiver_ident(line, at) {
                    if tables.iter().any(|t| t == name) {
                        let shown = if method.ends_with(')') {
                            (*method).to_string()
                        } else {
                            format!("{method}…)")
                        };
                        findings.push(Finding::new(
                            rules::NONDET_ITERATION,
                            &file.path,
                            line_no,
                            format!(
                                "`{name}{shown}` enumerates a HashMap/HashSet in seed order — \
                                 use BlockMap/DigramIndex or a sorted structure, or sort \
                                 the result and annotate"
                            ),
                        ));
                    }
                }
                from = at + method.len();
            }
        }
        if let Some(name) = for_loop_over(line) {
            if tables.iter().any(|t| t == &name) {
                findings.push(Finding::new(
                    rules::NONDET_ITERATION,
                    &file.path,
                    line_no,
                    format!(
                        "`for … in {name}` enumerates a HashMap/HashSet in seed order — \
                         use BlockMap/DigramIndex or a sorted structure, or sort the \
                         result and annotate"
                    ),
                ));
            }
        }
    }
    findings
}

/// Collects every identifier this file binds to a `HashMap`/`HashSet`,
/// via a type annotation (`name: …HashMap<…>` in a let, field, or
/// param) or a constructor (`let [mut] name = …HashMap::…`).
fn registered_tables(file: &AnalyzedFile) -> Vec<String> {
    let mut tables = Vec::new();
    for line in &file.lines {
        for table in ["HashMap", "HashSet"] {
            let mut from = 0;
            while let Some(found) = line[from..].find(table) {
                let at = from + found;
                from = at + table.len();
                if !token_boundary(line, at, table.len()) {
                    continue;
                }
                let after = &line[at + table.len()..];
                let before = &line[..at];
                if after.starts_with('<') {
                    // Type annotation: the bound name sits before the `:`.
                    if let Some(name) = annotated_ident(before) {
                        push_unique(&mut tables, name);
                    }
                } else if after.starts_with("::") {
                    // Constructor: `let [mut] name = …HashMap::new()`.
                    if let Some(name) = let_bound_ident(before) {
                        push_unique(&mut tables, name);
                    }
                }
            }
        }
    }
    tables
}

/// For text ending just before a `HashMap`/`HashSet` type token, walks
/// back over the path/reference prefix to the `:` and returns the
/// identifier annotated with that type.
fn annotated_ident(before: &str) -> Option<String> {
    let mut rest = before.trim_end();
    for prefix in ["std::collections::", "collections::", "ahash::"] {
        rest = rest.strip_suffix(prefix).unwrap_or(rest);
    }
    rest = rest.trim_end();
    rest = rest.strip_suffix("&mut").unwrap_or(rest);
    rest = rest.strip_suffix('&').unwrap_or(rest);
    rest = rest.trim_end().strip_suffix(':')?.trim_end();
    // `pub name:` / `let name:` / `(name:` all end with the ident, so a
    // bare trailing identifier is exactly what we want.
    trailing_ident(rest).map(str::to_string)
}

/// The identifier the text ends with, if any.
fn trailing_ident(text: &str) -> Option<&str> {
    let bytes = text.as_bytes();
    let mut start = bytes.len();
    while start > 0 {
        let b = bytes[start - 1];
        if b.is_ascii_alphanumeric() || b == b'_' {
            start -= 1;
        } else {
            break;
        }
    }
    let name = &text[start..];
    if name.is_empty() || name.as_bytes()[0].is_ascii_digit() {
        None
    } else {
        Some(name)
    }
}

/// For text ending just before `HashMap::`, returns the let-bound name
/// if the line is a `let [mut] name = …` binding.
fn let_bound_ident(before: &str) -> Option<String> {
    let eq = before.rfind('=')?;
    let lhs = before[..eq].trim_end();
    let lhs = lhs.split_once("let ")?.1.trim();
    let lhs = lhs.strip_prefix("mut ").unwrap_or(lhs).trim();
    // Skip destructuring/typed lets here; typed lets are caught by the
    // annotation arm anyway.
    if lhs.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') && !lhs.is_empty() {
        Some(lhs.to_string())
    } else {
        None
    }
}

/// If `line` is a `for … in <receiver> {` loop, returns the receiver's
/// final identifier (stripping `&`/`&mut`/`self.`), when the receiver
/// is a plain place expression rather than a call.
fn for_loop_over(line: &str) -> Option<String> {
    let trimmed = line.trim_start();
    if !trimmed.starts_with("for ") {
        return None;
    }
    let (_, rest) = trimmed.split_once(" in ")?;
    let expr = rest.split('{').next()?.trim();
    let expr = expr.strip_prefix("&mut ").unwrap_or(expr);
    let expr = expr.strip_prefix('&').unwrap_or(expr);
    if expr.contains('(') {
        // `for x in map.keys()` is handled by the method arm; calls on
        // non-registered receivers are out of scope.
        return None;
    }
    let name = expr.rsplit('.').next()?;
    if !name.is_empty() && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        Some(name.to_string())
    } else {
        None
    }
}

/// Extracts the identifier segment immediately before the `.` of a
/// method call found at byte `dot_at` (`self.map.keys()` → `map`).
fn receiver_ident(line: &str, dot_at: usize) -> Option<&str> {
    let bytes = line.as_bytes();
    let mut start = dot_at;
    while start > 0 {
        let b = bytes[start - 1];
        if b.is_ascii_alphanumeric() || b == b'_' {
            start -= 1;
        } else {
            break;
        }
    }
    if start == dot_at {
        return None;
    }
    Some(&line[start..dot_at])
}

/// Whether `line[at..at+len]` is a whole token (not part of a longer
/// identifier like `MyHashMapWrapper`).
fn token_boundary(line: &str, at: usize, len: usize) -> bool {
    let bytes = line.as_bytes();
    let before_ok = at == 0 || {
        let b = bytes[at - 1];
        !b.is_ascii_alphanumeric() && b != b'_'
    };
    let after_ok = at + len >= bytes.len() || {
        let b = bytes[at + len];
        !b.is_ascii_alphanumeric() && b != b'_'
    };
    before_ok && after_ok
}

fn push_unique(tables: &mut Vec<String>, name: String) {
    if !tables.contains(&name) {
        tables.push(name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn findings_in(content: &str) -> Vec<Finding> {
        check(&AnalyzedFile::new(&SourceFile {
            path: "crates/sim/src/x.rs".to_string(),
            content: content.to_string(),
        }))
    }

    #[test]
    fn flags_iteration_over_typed_binding() {
        let src = "\
use std::collections::HashMap;
fn f(map: &HashMap<u64, u64>) -> u64 {
    map.values().sum()
}
";
        let f = findings_in(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, rules::NONDET_ITERATION);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn flags_constructor_binding_and_for_loop() {
        let src = "\
fn f() {
    let mut seen = std::collections::HashSet::new();
    seen.insert(1u64);
    for x in &seen {
        drop(x);
    }
}
";
        let f = findings_in(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn flags_field_receiver_through_self() {
        let src = "\
struct S {
    index: std::collections::HashMap<u64, u64>,
}
impl S {
    fn dump(&self) -> Vec<u64> {
        self.index.keys().copied().collect()
    }
}
";
        let f = findings_in(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 6);
        assert!(f[0].message.contains("`index.keys()`"));
    }

    #[test]
    fn lookups_and_inserts_are_fine() {
        let src = "\
fn f(map: &mut std::collections::HashMap<u64, u64>) {
    map.insert(1, 2);
    let _ = map.get(&1);
    let _ = map.contains_key(&1);
    let _ = map.len();
}
";
        assert!(findings_in(src).is_empty());
    }

    #[test]
    fn other_types_with_same_method_names_are_fine() {
        let src = "\
fn f(v: &[u64], map: std::collections::HashMap<u64, u64>) -> u64 {
    let _ = map.len();
    v.iter().sum()
}
";
        assert!(findings_in(src).is_empty());
    }

    #[test]
    fn cfg_test_regions_and_uncovered_crates_are_skipped() {
        let src = "\
#[cfg(test)]
mod tests {
    fn t(map: &std::collections::HashMap<u64, u64>) -> u64 {
        map.values().sum()
    }
}
";
        assert!(findings_in(src).is_empty());
        let bench = check(&AnalyzedFile::new(&SourceFile {
            path: "crates/bench/src/lib.rs".to_string(),
            content: "fn f(m: &std::collections::HashMap<u64,u64>) { m.keys(); }".to_string(),
        }));
        assert!(bench.is_empty());
    }

    #[test]
    fn mentions_in_comments_and_strings_do_not_register() {
        let src = "\
/// Uses a HashMap internally? No: this doc mentions map.keys().
fn f(map: &crate::BlockMap<u64>) -> u64 {
    let _ = \"HashMap::new()\";
    map.len() as u64
}
";
        assert!(findings_in(src).is_empty());
    }
}
