//! In-workspace shim for the subset of the `criterion` benchmarking API
//! that `tifs-bench` uses. The workspace builds offline, so the real
//! crate cannot be fetched; bench sources stay source-compatible with it
//! and can move to upstream criterion unchanged once a registry is
//! available.
//!
//! What it does:
//!
//! * auto-calibrates iterations per sample toward a wall-time target,
//!   then takes `sample_size` samples and reports min / median / mean;
//! * prints one line per benchmark, with element throughput when a group
//!   set [`Throughput::Elements`];
//! * appends every result to a machine-readable JSON report when the
//!   `TIFS_BENCH_JSON` environment variable names a path (used to record
//!   the committed baseline under `crates/bench/baselines/`).
//!
//! Environment knobs: `TIFS_BENCH_SAMPLES` caps samples per benchmark,
//! `TIFS_BENCH_TARGET_MS` sets the per-sample calibration target
//! (default 20 ms).

#![forbid(unsafe_code)]

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-iteration workload hints (accepted, not acted on — the shim sizes
/// batches itself).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output.
    SmallInput,
    /// Large setup output.
    LargeInput,
    /// Setup output per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// One finished measurement.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// `group/name` identifier.
    pub id: String,
    /// Samples taken.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
    /// Minimum time per iteration, nanoseconds.
    pub min_ns: f64,
    /// Median time per iteration, nanoseconds.
    pub median_ns: f64,
    /// Mean time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Elements per iteration, if annotated.
    pub elements: Option<u64>,
}

impl BenchResult {
    fn throughput_line(&self) -> String {
        match self.elements {
            Some(e) if self.median_ns > 0.0 => {
                let per_sec = e as f64 * 1e9 / self.median_ns;
                format!("  {:>12.0} elem/s", per_sec)
            }
            _ => String::new(),
        }
    }
}

/// The benchmark driver (shim of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    target: Duration,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        let target_ms = env_u64("TIFS_BENCH_TARGET_MS").unwrap_or(20);
        Criterion {
            sample_size: 10,
            target: Duration::from_millis(target_ms),
            results: Vec::new(),
        }
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.parse().ok()
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.effective_samples(None);
        let target = self.target;
        self.run_one(id.to_string(), None, sample_size, target, f);
        self
    }

    fn effective_samples(&self, group_override: Option<usize>) -> usize {
        let n = group_override.unwrap_or(self.sample_size);
        match env_u64("TIFS_BENCH_SAMPLES") {
            Some(cap) => n.min(cap.max(1) as usize),
            None => n,
        }
    }

    fn run_one<F>(
        &mut self,
        id: String,
        elements: Option<u64>,
        samples: usize,
        target: Duration,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples,
            target,
            measurement: None,
        };
        f(&mut bencher);
        let m = bencher
            .measurement
            .expect("benchmark closure must call Bencher::iter or iter_batched");
        let result = BenchResult {
            id,
            samples: m.times_ns.len(),
            iters_per_sample: m.iters_per_sample,
            min_ns: m.min_ns(),
            median_ns: m.median_ns(),
            mean_ns: m.mean_ns(),
            elements,
        };
        println!(
            "{:<44} {:>12.1} ns/iter (min {:>10.1}, {} samples x {} iters){}",
            result.id,
            result.median_ns,
            result.min_ns,
            result.samples,
            result.iters_per_sample,
            result.throughput_line()
        );
        self.results.push(result);
    }

    /// Prints the summary and writes the JSON report if requested.
    ///
    /// `TIFS_BENCH_JSON` names the target path. Because `cargo bench` runs
    /// each bench binary as its own process, the suite name (the bench
    /// binary's file stem, hash suffix stripped) is inserted before the
    /// extension so suites do not overwrite one another:
    /// `baseline.json` → `baseline-components.json`, `baseline-figures.json`.
    pub fn finalize(&self) {
        println!("\n{} benchmarks run", self.results.len());
        if let Ok(path) = std::env::var("TIFS_BENCH_JSON") {
            let path = per_suite_path(&path);
            match std::fs::write(&path, self.to_json()) {
                Ok(()) => println!("wrote {path}"),
                Err(e) => eprintln!("failed to write {path}: {e}"),
            }
        }
    }

    /// Serializes all results as a JSON document (hand-rolled; the
    /// workspace has no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"benchmarks\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let elements = r
                .elements
                .map(|e| e.to_string())
                .unwrap_or_else(|| "null".into());
            out.push_str(&format!(
                "    {{\"id\": \"{}\", \"samples\": {}, \"iters_per_sample\": {}, \
                 \"min_ns\": {:.1}, \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"elements\": {}}}{}\n",
                r.id.replace('"', "'"),
                r.samples,
                r.iters_per_sample,
                r.min_ns,
                r.median_ns,
                r.mean_ns,
                elements,
                if i + 1 == self.results.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Inserts this process's bench-suite name before the path's extension.
fn per_suite_path(path: &str) -> String {
    let suite = std::env::args()
        .next()
        .and_then(|argv0| {
            std::path::Path::new(&argv0)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
        })
        .map(|stem| {
            // cargo names bench executables `<suite>-<metadata hash>`.
            match stem.rsplit_once('-') {
                Some((name, hash))
                    if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) =>
                {
                    name.to_string()
                }
                _ => stem,
            }
        })
        .unwrap_or_else(|| "bench".to_string());
    let p = std::path::Path::new(path);
    let stem = p
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "report".to_string());
    let file = match p.extension() {
        Some(ext) => format!("{stem}-{suite}.{}", ext.to_string_lossy()),
        None => format!("{stem}-{suite}"),
    };
    p.with_file_name(file).to_string_lossy().into_owned()
}

/// A group of related benchmarks (shim of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Annotates per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let elements = match self.throughput {
            Some(Throughput::Elements(e)) => Some(e),
            _ => None,
        };
        let samples = self.criterion.effective_samples(self.sample_size);
        let target = self.criterion.target;
        self.criterion.run_one(
            format!("{}/{}", self.name, id),
            elements,
            samples,
            target,
            f,
        );
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

struct Measurement {
    times_ns: Vec<f64>,
    iters_per_sample: u64,
}

impl Measurement {
    fn min_ns(&self) -> f64 {
        self.times_ns.iter().copied().fold(f64::INFINITY, f64::min)
    }

    fn mean_ns(&self) -> f64 {
        self.times_ns.iter().sum::<f64>() / self.times_ns.len() as f64
    }

    fn median_ns(&self) -> f64 {
        let mut v = self.times_ns.clone();
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    target: Duration,
    measurement: Option<Measurement>,
}

impl Bencher {
    /// Times `routine`, auto-calibrating iterations per sample.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Calibrate: double the batch until it exceeds 1/4 of the target.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed * 4 >= self.target || iters >= 1 << 30 {
                let per_iter = elapsed.as_nanos().max(1) as u64 / iters;
                let ideal = self.target.as_nanos() as u64 / per_iter.max(1);
                iters = ideal.clamp(1, 1 << 30);
                break;
            }
            iters *= 2;
        }
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples.max(1) {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            times.push(t.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
        self.measurement = Some(Measurement {
            times_ns: times,
            iters_per_sample: iters,
        });
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded by running one iteration per timed window.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples.max(1) {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            times.push(t.elapsed().as_secs_f64() * 1e9);
        }
        self.measurement = Some(Measurement {
            times_ns: times,
            iters_per_sample: 1,
        });
    }
}

/// Defines a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($f(c);)+
        }
    };
}

/// Defines `main` running every group then finalizing the report.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Elements(4));
            g.sample_size(3);
            g.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
            g.finish();
        }
        assert_eq!(c.results.len(), 1);
        let r = &c.results[0];
        assert_eq!(r.id, "g/spin");
        assert!(r.min_ns > 0.0);
        assert_eq!(r.elements, Some(4));
        let json = c.to_json();
        assert!(json.contains("\"id\": \"g/spin\""));
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::LargeInput)
        });
        assert_eq!(c.results[0].iters_per_sample, 1);
    }
}
