//! Regression tests for timing-accounting bugs in the CMP harness:
//! warmup cycles leaking into the measured window's cycle count, and L2
//! eviction notifications lagging the evicting access by a cycle.

use std::collections::BTreeSet;

use tifs_sim::cmp::Cmp;
use tifs_sim::config::SystemConfig;
use tifs_sim::l2::{L2ReqKind, L2};
use tifs_sim::prefetch::{FetchKind, IPrefetcher, NullPrefetcher, PrefetchCtx};
use tifs_sim::stats::SimReport;
use tifs_trace::workload::{Workload, WorkloadSpec};
use tifs_trace::{Addr, BlockAddr, FetchRecord};

fn single_core_cmp(workload: &Workload) -> Cmp<'_> {
    let cfg = SystemConfig::single_core();
    let streams: Vec<_> = (0..cfg.num_cores)
        .map(|c| Box::new(workload.walker(c)) as Box<dyn Iterator<Item = FetchRecord>>)
        .collect();
    Cmp::new(cfg, streams, Box::new(NullPrefetcher))
}

/// Whole-report IPC as the structured reports compute it: retired
/// instructions over the report's `cycles` field.
fn report_ipc(r: &SimReport) -> f64 {
    r.total_retired() as f64 / r.cycles as f64
}

#[test]
fn warmup_cycles_are_excluded_from_the_measured_window() {
    let workload = Workload::build(&WorkloadSpec::tiny_test(), 7);
    let measure = 10_000;

    let warmed = single_core_cmp(&workload).run_with_warmup(40_000, measure);
    assert_eq!(warmed.total_retired(), measure);
    // `cycles` must cover only the measured window. Per-core cycle
    // counters are epoch-relative already; the report-level count ends at
    // most one tick after the last core finishes.
    let last_core = warmed.cores.iter().map(|c| c.cycles).max().unwrap();
    assert!(
        warmed.cycles <= last_core + 1,
        "report.cycles {} includes warmup cycles (cores finished by {})",
        warmed.cycles,
        last_core
    );

    // Warming caches and predictors must not *deflate* the whole-report
    // IPC relative to a cold run of the same measured budget. Before the
    // fix the warmed run's `cycles` included the entire warmup phase,
    // cutting its report-level IPC to a fraction of the cold run's.
    let cold = single_core_cmp(&workload).run_with_warmup(0, measure);
    assert_eq!(cold.total_retired(), measure);
    assert!(
        report_ipc(&warmed) >= report_ipc(&cold) * 0.8,
        "warmed report IPC {:.4} deflated vs cold {:.4}",
        report_ipc(&warmed),
        report_ipc(&cold)
    );
}

/// Observes the ordering contract between L2 evictions and the
/// prefetcher tick: by the time `tick` runs, every eviction raised by
/// this cycle's core requests must already have been delivered through
/// `on_l2_evict`, so the prefetcher never acts on stale residency.
#[derive(Default)]
struct EvictionOrderProbe {
    /// Blocks this probe believes the L2 directory holds (inserted by a
    /// demand miss, not yet reported evicted).
    believed: BTreeSet<BlockAddr>,
    /// Ticks that saw a believed-resident block already gone from the
    /// directory — an eviction the probe had not been told about.
    stale_views: u64,
    evictions_seen: u64,
}

impl IPrefetcher for EvictionOrderProbe {
    fn name(&self) -> &'static str {
        "eviction-order-probe"
    }

    fn on_block_fetch(
        &mut self,
        _ctx: &mut PrefetchCtx<'_>,
        block: BlockAddr,
        kind: FetchKind,
    ) -> Option<u64> {
        if kind == FetchKind::Miss {
            // The demand request issued right after this callback inserts
            // the block into the L2 directory this same cycle.
            self.believed.insert(block);
        }
        None
    }

    fn on_l2_evict(&mut self, block: BlockAddr) {
        self.evictions_seen += 1;
        self.believed.remove(&block);
    }

    fn tick(&mut self, ctx: &mut PrefetchCtx<'_>) {
        for &block in &self.believed {
            if !ctx.l2.contains_instruction(block) {
                self.stale_views += 1;
            }
        }
    }

    fn counters(&self) -> Vec<(String, f64)> {
        vec![
            ("stale_views".into(), self.stale_views as f64),
            ("evictions_seen".into(), self.evictions_seen as f64),
        ]
    }
}

/// A configuration that evicts on nearly every fetch: tiny L1-I and L2,
/// next-line prefetching off, so a cyclic walk over a working set larger
/// than both caches misses (and evicts) continuously.
fn thrashing_config() -> SystemConfig {
    SystemConfig {
        num_cores: 1,
        l1i_bytes: 16 * 64, // 16 blocks
        l1i_ways: 1,
        next_line_depth: 0,
        l2_bytes: 32 * 64, // 32 blocks
        l2_ways: 1,
        ..SystemConfig::default()
    }
}

#[test]
fn evictions_are_delivered_before_the_prefetcher_tick() {
    // One fetch block per instruction, cycling through 256 distinct
    // blocks — far beyond the 32-block L2 — so every demand fill evicts
    // a block the probe still believes resident.
    let stream = (0..u64::MAX).map(|i| FetchRecord::plain(Addr((i % 256) * 64)));
    let mut cmp = Cmp::new(
        thrashing_config(),
        vec![Box::new(stream)],
        Box::new(EvictionOrderProbe::default()),
    );
    let report = cmp.run(600);
    let probe_evictions = report.prefetcher_counter("evictions_seen").unwrap_or(0.0);
    let stale = report.prefetcher_counter("stale_views").unwrap_or(f64::NAN);
    assert!(
        probe_evictions > 100.0,
        "scenario must thrash: only {probe_evictions} evictions delivered"
    );
    assert_eq!(
        stale, 0.0,
        "prefetcher ticked {stale} times against residency state that \
         already dropped a block it was never told was evicted"
    );
}

#[test]
fn forced_outcome_data_requests_contend_by_design() {
    // Data-side accesses carry a forced L2 outcome (their addresses are
    // synthetic), but they are *real traffic*: they must charge bank
    // occupancy and queueing delay exactly like directory-backed
    // requests, or the contention that Figure 13 measures vanishes.
    let mut l2 = L2::new(&SystemConfig::table2());
    let bank0_a = BlockAddr(16); // bank 0
    let bank0_b = BlockAddr(32); // also bank 0
    let r1 = l2.request(0, bank0_a, L2ReqKind::Data, Some(true)).unwrap();
    let r2 = l2.request(0, bank0_b, L2ReqKind::Data, Some(true)).unwrap();
    assert!(r2.ready > r1.ready, "same-bank forced hits must serialize");
    assert_eq!(
        l2.stats().queue_delay,
        r2.ready - r1.ready,
        "the serialization must be charged to queue_delay"
    );
    // A forced miss consumes memory bandwidth like a real miss.
    let before = l2.stats().mem_transfers;
    l2.request(100, BlockAddr(48), L2ReqKind::Data, Some(false))
        .unwrap();
    assert_eq!(l2.stats().mem_transfers, before + 1);

    // The side-effect-free probe for analyses is `contains_instruction`:
    // it must touch neither statistics nor directory state.
    let stats_before = l2.stats().clone();
    assert!(!l2.contains_instruction(BlockAddr(4096)));
    assert_eq!(l2.stats(), &stats_before, "probe mutated statistics");
}
