//! Property-based tests for the simulator substrate: cache invariants and
//! L2 timing monotonicity.

use proptest::prelude::*;
use tifs_sim::cache::SetAssocCache;
use tifs_sim::config::SystemConfig;
use tifs_sim::l2::{L2ReqKind, L2};
use tifs_trace::BlockAddr;

proptest! {
    #[test]
    fn cache_capacity_and_membership(ops in prop::collection::vec((0u64..256, any::<bool>()), 0..500)) {
        // 16 blocks, 2-way.
        let mut cache = SetAssocCache::new(1024, 2);
        let mut inserted = std::collections::HashSet::new();
        for (b, is_insert) in ops {
            let block = BlockAddr(b);
            if is_insert {
                cache.insert(block);
                inserted.insert(b);
            } else if cache.access(block) {
                // A hit must be a block we actually inserted.
                prop_assert!(inserted.contains(&b), "phantom block {b}");
            }
            prop_assert!(cache.len() <= 16);
        }
        let (ins, ev) = cache.churn();
        prop_assert_eq!(ins - ev, cache.len() as u64);
    }

    #[test]
    fn cache_insert_makes_resident(blocks in prop::collection::vec(0u64..1024, 1..100)) {
        let mut cache = SetAssocCache::new(64 * 1024, 2);
        for &b in &blocks {
            cache.insert(BlockAddr(b));
            prop_assert!(cache.peek(BlockAddr(b)), "freshly inserted block must be resident");
        }
    }

    #[test]
    fn l2_ready_times_never_precede_latency(
        reqs in prop::collection::vec((0u64..4096, 0u64..8), 1..200),
    ) {
        let cfg = SystemConfig::table2();
        let mut l2 = L2::new(&cfg);
        let mut now = 0u64;
        for (block, gap) in reqs {
            now += gap;
            if let Some(resp) = l2.request(now, BlockAddr(block), L2ReqKind::IFetch, None) {
                prop_assert!(
                    resp.ready >= now + cfg.l2_latency,
                    "ready {} before minimum latency at {}",
                    resp.ready,
                    now
                );
                if !resp.hit {
                    prop_assert!(resp.ready >= now + cfg.l2_latency + cfg.mem_latency);
                }
            }
        }
    }

    #[test]
    fn l2_second_touch_hits(block in 0u64..100_000) {
        let mut l2 = L2::new(&SystemConfig::table2());
        let first = l2.request(0, BlockAddr(block), L2ReqKind::IFetch, None).unwrap();
        prop_assert!(!first.hit);
        let second = l2.request(10_000, BlockAddr(block), L2ReqKind::IFetch, None).unwrap();
        prop_assert!(second.hit);
        prop_assert!(second.ready < first.ready + 10_000);
    }

    #[test]
    fn l2_traffic_accounting_sums(kinds in prop::collection::vec(0usize..6, 0..100)) {
        let mut l2 = L2::new(&SystemConfig::table2());
        let mut now = 0;
        for (i, k) in kinds.iter().enumerate() {
            let kind = L2ReqKind::ALL[*k];
            let forced = matches!(kind, L2ReqKind::Data).then_some(true);
            let _ = l2.request(now, BlockAddr(i as u64), kind, forced);
            now += 100; // avoid MSHR exhaustion
        }
        let total: u64 = L2ReqKind::ALL.iter().map(|&k| l2.stats().of(k)).sum();
        prop_assert_eq!(total, kinds.len() as u64);
        prop_assert!(l2.stats().base_traffic() + l2.stats().iml_traffic() == total);
    }
}
