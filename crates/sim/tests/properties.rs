//! Property-based tests for the simulator substrate: cache invariants and
//! L2 timing monotonicity.

use proptest::prelude::*;
use tifs_sim::cache::SetAssocCache;
use tifs_sim::config::SystemConfig;
use tifs_sim::l2::{L2ReqKind, L2Stats, L2};
use tifs_sim::stats::{CoreStats, ReportCodecError, SimReport};
use tifs_trace::BlockAddr;

proptest! {
    #[test]
    fn cache_capacity_and_membership(ops in prop::collection::vec((0u64..256, any::<bool>()), 0..500)) {
        // 16 blocks, 2-way.
        let mut cache = SetAssocCache::new(1024, 2);
        let mut inserted = std::collections::HashSet::new();
        for (b, is_insert) in ops {
            let block = BlockAddr(b);
            if is_insert {
                cache.insert(block);
                inserted.insert(b);
            } else if cache.access(block) {
                // A hit must be a block we actually inserted.
                prop_assert!(inserted.contains(&b), "phantom block {b}");
            }
            prop_assert!(cache.len() <= 16);
        }
        let (ins, ev) = cache.churn();
        prop_assert_eq!(ins - ev, cache.len() as u64);
    }

    #[test]
    fn cache_insert_makes_resident(blocks in prop::collection::vec(0u64..1024, 1..100)) {
        let mut cache = SetAssocCache::new(64 * 1024, 2);
        for &b in &blocks {
            cache.insert(BlockAddr(b));
            prop_assert!(cache.peek(BlockAddr(b)), "freshly inserted block must be resident");
        }
    }

    #[test]
    fn l2_ready_times_never_precede_latency(
        reqs in prop::collection::vec((0u64..4096, 0u64..8), 1..200),
    ) {
        let cfg = SystemConfig::table2();
        let mut l2 = L2::new(&cfg);
        let mut now = 0u64;
        for (block, gap) in reqs {
            now += gap;
            if let Some(resp) = l2.request(now, BlockAddr(block), L2ReqKind::IFetch, None) {
                prop_assert!(
                    resp.ready >= now + cfg.l2_latency,
                    "ready {} before minimum latency at {}",
                    resp.ready,
                    now
                );
                if !resp.hit {
                    prop_assert!(resp.ready >= now + cfg.l2_latency + cfg.mem_latency);
                }
            }
        }
    }

    #[test]
    fn l2_second_touch_hits(block in 0u64..100_000) {
        let mut l2 = L2::new(&SystemConfig::table2());
        let first = l2.request(0, BlockAddr(block), L2ReqKind::IFetch, None).unwrap();
        prop_assert!(!first.hit);
        let second = l2.request(10_000, BlockAddr(block), L2ReqKind::IFetch, None).unwrap();
        prop_assert!(second.hit);
        prop_assert!(second.ready < first.ready + 10_000);
    }

    #[test]
    fn l2_traffic_accounting_sums(kinds in prop::collection::vec(0usize..6, 0..100)) {
        let mut l2 = L2::new(&SystemConfig::table2());
        let mut now = 0;
        for (i, k) in kinds.iter().enumerate() {
            let kind = L2ReqKind::ALL[*k];
            let forced = matches!(kind, L2ReqKind::Data).then_some(true);
            let _ = l2.request(now, BlockAddr(i as u64), kind, forced);
            now += 100; // avoid MSHR exhaustion
        }
        let total: u64 = L2ReqKind::ALL.iter().map(|&k| l2.stats().of(k)).sum();
        prop_assert_eq!(total, kinds.len() as u64);
        prop_assert!(l2.stats().base_traffic() + l2.stats().iml_traffic() == total);
    }

    #[test]
    fn report_codec_roundtrips_arbitrary_reports(
        core_words in prop::collection::vec(
            prop::collection::vec(any::<u64>(), 13..14),
            0..5,
        ),
        l2_words in prop::collection::vec(any::<u64>(), 13..14),
        cycles in any::<u64>(),
        counters in prop::collection::vec(
            (prop::collection::vec(any::<u8>(), 0..12), any::<u64>()),
            0..5,
        ),
    ) {
        let report = arbitrary_report(&core_words, &l2_words, cycles, &counters);
        let bytes = report.to_canonical_bytes();
        let back = SimReport::from_canonical_bytes(&bytes).expect("decode");
        // Byte-level comparison survives NaN counter values (a float's
        // exact bit pattern round-trips even where `==` cannot see it).
        prop_assert_eq!(back.to_canonical_bytes(), bytes);
        prop_assert_eq!(back.cores.len(), report.cores.len());
        prop_assert_eq!(back.cores, report.cores);
        prop_assert_eq!(back.l2, report.l2);
    }

    #[test]
    fn report_codec_rejects_any_truncation(
        core_words in prop::collection::vec(
            prop::collection::vec(any::<u64>(), 13..14),
            0..5,
        ),
        l2_words in prop::collection::vec(any::<u64>(), 13..14),
        cycles in any::<u64>(),
        counters in prop::collection::vec(
            (prop::collection::vec(any::<u8>(), 0..12), any::<u64>()),
            0..5,
        ),
        cut_seed in any::<u64>(),
        trailing in 1usize..5,
    ) {
        let report = arbitrary_report(&core_words, &l2_words, cycles, &counters);
        let bytes = report.to_canonical_bytes();
        let cut = (cut_seed % bytes.len() as u64) as usize;
        prop_assert_eq!(
            SimReport::from_canonical_bytes(&bytes[..cut]),
            Err(ReportCodecError::Truncated),
            "prefix of {} / {} bytes must not decode",
            cut,
            bytes.len()
        );
        let mut padded = bytes.clone();
        padded.resize(bytes.len() + trailing, 0);
        prop_assert!(SimReport::from_canonical_bytes(&padded).is_err());
    }

    #[test]
    fn shard_merge_is_associative_on_l2_and_cores(
        shards in prop::collection::vec(
            prop::collection::vec(any::<u64>(), 13..14),
            1..6,
        ),
    ) {
        // Merging all shards at once equals merging a prefix, then the
        // rest — the property that lets the engine chunk per-core work
        // units however it likes without changing a byte.
        let parts: Vec<SimReport> = shards
            .iter()
            .map(|w| arbitrary_report(std::slice::from_ref(w), &[1; 13], w[0], &[]))
            .collect();
        let all = SimReport::merge_shards(&parts);
        for split in 0..parts.len() {
            let left = SimReport::merge_shards(&parts[..split]);
            let right = SimReport::merge_shards(&parts[split..]);
            let two_step = SimReport::merge_shards(&[left, right]);
            prop_assert_eq!(
                two_step.to_canonical_bytes(),
                all.to_canonical_bytes(),
                "split at {} diverged",
                split
            );
        }
    }
}

/// Builds a report from drawn words: counters get printable ASCII names
/// and arbitrary f64 bit patterns (NaNs included — the codec must carry
/// them bit-exactly).
fn arbitrary_report(
    core_words: &[Vec<u64>],
    l2_words: &[u64],
    cycles: u64,
    counters: &[(Vec<u8>, u64)],
) -> SimReport {
    let cores = core_words
        .iter()
        .map(|w| CoreStats {
            retired: w[0],
            cycles: w[1],
            fetch_blocks: w[2],
            l1i_hits: w[3],
            next_line_hits: w[4],
            prefetch_hits: w[5],
            demand_misses: w[6],
            fetch_stall_cycles: w[7],
            mispredicts: w[8],
            cond_branches: w[9],
            flushes: w[10],
            refill_cycles: w[11],
            refill_misses: w[12],
        })
        .collect();
    let l2 = L2Stats {
        accesses: [
            l2_words[0],
            l2_words[1],
            l2_words[2],
            l2_words[3],
            l2_words[4],
            l2_words[5],
        ],
        inst_hits: l2_words[6],
        inst_misses: l2_words[7],
        mshr_rejects: l2_words[8],
        mem_transfers: l2_words[9],
        tag_updates: l2_words[10],
        tag_update_drops: l2_words[11],
        queue_delay: l2_words[12],
    };
    let prefetcher = counters
        .iter()
        .map(|(name, bits)| {
            let name: String = name.iter().map(|b| (b'a' + b % 26) as char).collect();
            (name, f64::from_bits(*bits))
        })
        .collect();
    SimReport {
        cores,
        l2,
        cycles,
        prefetcher,
        l2_events: Vec::new(),
        l2_warm_blocks: Vec::new(),
    }
}
