//! Old-vs-new equivalence for the hot-loop structures: the
//! open-addressed/sorted replacements must match the std-collection
//! semantics they displaced, operation for operation.
//!
//! Three models:
//!
//! * [`FillQueue`] vs `HashMap<block, ready>` + the PR 1-era
//!   sort-before-drain: the queue's structural pop order must equal
//!   sorting a drained map by `(ready, block)` — the property that let
//!   the workarounds be deleted instead of maintained.
//! * [`BlockMap`] vs `HashMap`: point lookups, upserts, and
//!   backward-shift deletion under forced collision pressure.
//! * The flat [`SetAssocCache`] vs a per-set `Vec` reference
//!   implementation of true LRU (the shape the cache had before it was
//!   flattened into one contiguous slab).
//!
//! Each case drives both sides through one randomized op sequence and
//! compares every observable result, not just the final state.

use std::collections::HashMap;

use proptest::prelude::*;
use tifs_sim::cache::SetAssocCache;
use tifs_sim::collections::{BlockMap, FillQueue};
use tifs_trace::BlockAddr;

/// Deterministic op-stream generator (splitmix-style).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

proptest! {
    #[test]
    fn fill_queue_matches_hashmap_model(seed in 0u64..5_000) {
        let mut rng = Rng(seed);
        let mut queue: FillQueue<u64> = FillQueue::new();
        let mut model: HashMap<BlockAddr, (u64, u64)> = HashMap::new();
        let mut now = 0u64;
        for _ in 0..300 {
            match rng.next() % 4 {
                0 | 1 => {
                    // Insert (an upsert, like HashMap::insert).
                    let block = BlockAddr(rng.next() % 24);
                    let ready = now + rng.next() % 40;
                    let value = rng.next();
                    queue.insert(ready, block, value);
                    model.insert(block, (ready, value));
                }
                2 => {
                    let block = BlockAddr(rng.next() % 24);
                    prop_assert_eq!(queue.contains(block), model.contains_key(&block));
                    prop_assert_eq!(queue.remove(block), model.remove(&block));
                }
                _ => {
                    // Advance time and drain. The old code collected the
                    // ready entries of a HashMap and sorted by (ready,
                    // block); the queue must pop the same set in the
                    // same order structurally.
                    now += rng.next() % 30;
                    let mut expect: Vec<(u64, BlockAddr)> = model
                        .iter()
                        .filter(|&(_, &(r, _))| r <= now)
                        .map(|(&b, &(r, _))| (r, b))
                        .collect();
                    expect.sort_unstable_by_key(|&(r, b)| (r, b.0));
                    let mut got = Vec::new();
                    while let Some((r, b, v)) = queue.pop_ready(now) {
                        prop_assert_eq!(model.remove(&b), Some((r, v)));
                        got.push((r, b));
                    }
                    prop_assert_eq!(got, expect, "drain order must be the sorted order");
                }
            }
            prop_assert_eq!(queue.len(), model.len());
        }
    }

    #[test]
    fn block_map_matches_hashmap_model(seed in 0u64..5_000) {
        let mut rng = Rng(seed);
        // A tiny initial table plus a narrow key range forces collision
        // clusters, growth, and backward-shift chains.
        let mut map: BlockMap<u64> = BlockMap::with_capacity(4);
        let mut model: HashMap<BlockAddr, u64> = HashMap::new();
        for _ in 0..400 {
            let block = BlockAddr(rng.next() % 48);
            match rng.next() % 3 {
                0 => {
                    let value = rng.next();
                    prop_assert_eq!(map.insert(block, value), model.insert(block, value));
                }
                1 => {
                    prop_assert_eq!(map.get(block), model.get(&block).copied());
                    prop_assert_eq!(map.contains(block), model.contains_key(&block));
                }
                _ => {
                    prop_assert_eq!(map.remove(block), model.remove(&block));
                }
            }
            prop_assert_eq!(map.len(), model.len());
        }
        // Every surviving key must still be reachable.
        // tifs-lint: allow(nondet-iteration) — std-HashMap model in an
        // equivalence proptest; each entry is checked independently.
        for (&b, &v) in &model {
            prop_assert_eq!(map.get(b), Some(v));
        }
    }
}

/// The pre-flattening reference: per-set `Vec`s, MRU first.
struct RefCache {
    sets: Vec<Vec<BlockAddr>>,
    ways: usize,
    insertions: u64,
    evictions: u64,
}

impl RefCache {
    fn new(num_sets: usize, ways: usize) -> RefCache {
        RefCache {
            sets: vec![Vec::new(); num_sets],
            ways,
            insertions: 0,
            evictions: 0,
        }
    }

    fn set_of(&self, b: BlockAddr) -> usize {
        (b.0 as usize) & (self.sets.len() - 1)
    }

    fn access(&mut self, b: BlockAddr) -> bool {
        let s = self.set_of(b);
        let set = &mut self.sets[s];
        match set.iter().position(|&x| x == b) {
            Some(pos) => {
                let x = set.remove(pos);
                set.insert(0, x);
                true
            }
            None => false,
        }
    }

    fn insert(&mut self, b: BlockAddr) -> Option<BlockAddr> {
        let s = self.set_of(b);
        let ways = self.ways;
        let set = &mut self.sets[s];
        if let Some(pos) = set.iter().position(|&x| x == b) {
            let x = set.remove(pos);
            set.insert(0, x);
            return None;
        }
        self.insertions += 1;
        set.insert(0, b);
        if set.len() > ways {
            self.evictions += 1;
            set.pop()
        } else {
            None
        }
    }

    fn invalidate(&mut self, b: BlockAddr) -> bool {
        let s = self.set_of(b);
        let set = &mut self.sets[s];
        match set.iter().position(|&x| x == b) {
            Some(pos) => {
                set.remove(pos);
                true
            }
            None => false,
        }
    }
}

proptest! {
    #[test]
    fn flat_cache_matches_reference_lru(seed in 0u64..5_000, ways in 1usize..=4) {
        let mut rng = Rng(seed);
        // 8 sets x `ways` ways, 64-byte blocks.
        let mut cache = SetAssocCache::new(8 * ways * 64, ways);
        let mut reference = RefCache::new(8, ways);
        prop_assert_eq!(cache.num_sets(), 8);
        for _ in 0..400 {
            let b = BlockAddr(rng.next() % 64);
            match rng.next() % 4 {
                0 => prop_assert_eq!(cache.access(b), reference.access(b)),
                1 => {
                    let s = reference.set_of(b);
                    prop_assert_eq!(cache.peek(b), reference.sets[s].contains(&b));
                }
                2 => prop_assert_eq!(cache.insert(b), reference.insert(b)),
                _ => prop_assert_eq!(cache.invalidate(b), reference.invalidate(b)),
            }
            let ref_len: usize = reference.sets.iter().map(Vec::len).sum();
            prop_assert_eq!(cache.len(), ref_len);
            prop_assert_eq!(cache.churn(), (reference.insertions, reference.evictions));
        }
        let mut ref_blocks: Vec<BlockAddr> =
            reference.sets.iter().flatten().copied().collect();
        ref_blocks.sort_unstable();
        prop_assert_eq!(cache.resident_blocks(), ref_blocks);
    }
}
