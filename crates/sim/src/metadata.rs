//! Shared-metadata port arbitration (the timing half of the
//! MANA/Triangel-style metadata-sharing axis).
//!
//! When a chip's temporal-prefetch metadata (Index Table front end +
//! history storage) is one shared structure instead of per-core copies,
//! cores contend for its access ports. [`MetadataPorts`] models that
//! contention as a per-cycle port budget: every metadata operation
//! (index lookup/update, history append, history group read) claims a
//! port slot in its issue cycle, and an operation finding the ports
//! saturated by *other* cores' traffic is delayed by one cycle per
//! `ways` prior foreign operations.
//!
//! Two properties the equivalence suite relies on:
//!
//! * **cross-core only** — a core is never delayed by its own traffic
//!   (a private structure has as many ports as its one core can drive;
//!   the sharing penalty is the *other* cores' traffic), so a 1-core
//!   shared organization times exactly like the private one;
//! * **deterministic arbitration** — the arbiter has no internal queue
//!   or randomness; its outcome depends only on the order operations
//!   are presented, and [`Cmp::tick`](crate::cmp::Cmp::tick) presents
//!   them in fixed core order every cycle, so runs are bit-reproducible
//!   at any thread count.

/// A shared metadata structure's port arbiter.
///
/// `ways == 0` means unlimited ports (zero contention): every access is
/// served immediately and no counters move. This is also the correct
/// setting for private per-core metadata, where the arbiter exists only
/// so the prefetcher has one uniform code path.
#[derive(Clone, Debug)]
pub struct MetadataPorts {
    ways: usize,
    cycle: u64,
    issued: Vec<u32>,
    conflicts: u64,
    wait_cycles: u64,
}

impl MetadataPorts {
    /// Creates an arbiter for `num_cores` cores with `ways` ports per
    /// cycle (`0` = unlimited).
    pub fn new(num_cores: usize, ways: usize) -> MetadataPorts {
        MetadataPorts {
            ways,
            cycle: 0,
            issued: vec![0; num_cores],
            conflicts: 0,
            wait_cycles: 0,
        }
    }

    /// Port ways per cycle (`0` = unlimited).
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Records one metadata operation by `core` at cycle `now` and
    /// returns the cross-core port delay in cycles: the number of
    /// operations *other* cores already issued this cycle, divided by
    /// the port count. Unlimited arbiters (`ways == 0`) and sole users
    /// of a cycle are never delayed.
    pub fn access(&mut self, now: u64, core: usize) -> u64 {
        if now != self.cycle {
            self.cycle = now;
            self.issued.iter_mut().for_each(|n| *n = 0);
        }
        let foreign: u32 = self
            .issued
            .iter()
            .enumerate()
            .filter(|&(c, _)| c != core)
            .map(|(_, &n)| n)
            .sum();
        self.issued[core] += 1;
        if self.ways == 0 {
            return 0;
        }
        let delay = u64::from(foreign) / self.ways as u64;
        if delay > 0 {
            self.conflicts += 1;
            self.wait_cycles += delay;
        }
        delay
    }

    /// (delayed operations, total delay cycles) since the last reset.
    pub fn contention(&self) -> (u64, u64) {
        (self.conflicts, self.wait_cycles)
    }

    /// Zeroes the contention counters (warmup discard); the in-cycle
    /// port state is preserved.
    pub fn reset_counters(&mut self) {
        self.conflicts = 0;
        self.wait_cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_ports_never_delay_or_count() {
        let mut p = MetadataPorts::new(4, 0);
        for core in 0..4 {
            for _ in 0..10 {
                assert_eq!(p.access(7, core), 0);
            }
        }
        assert_eq!(p.contention(), (0, 0));
    }

    #[test]
    fn single_core_is_never_delayed() {
        let mut p = MetadataPorts::new(1, 1);
        for now in 0..5 {
            for _ in 0..6 {
                assert_eq!(p.access(now, 0), 0, "own traffic must not self-delay");
            }
        }
        assert_eq!(p.contention(), (0, 0));
    }

    #[test]
    fn foreign_traffic_delays_by_way_count() {
        let mut p = MetadataPorts::new(3, 2);
        // Core 0 issues three ops; core 1's first op sees 3 foreign ops
        // over 2 ways = 1 cycle of delay, core 2's first sees 4 / 2 = 2.
        assert_eq!(p.access(10, 0), 0);
        assert_eq!(p.access(10, 0), 0);
        assert_eq!(p.access(10, 0), 0);
        assert_eq!(p.access(10, 1), 1);
        assert_eq!(p.access(10, 2), 2);
        assert_eq!(p.contention(), (2, 3));
        // A new cycle clears the slate.
        assert_eq!(p.access(11, 1), 0);
    }

    #[test]
    fn idle_cores_never_delay_a_hot_core() {
        // Satellite check for the skewed-demand study: delay is computed
        // from *issued* foreign operations, never from core count, so a
        // hot core sharing the structure with zero-op (idle / duty-cycled
        // out) cores times exactly as if it were alone — 1-active-core
        // sharing is equivalent to private metadata under any skew.
        let mut p = MetadataPorts::new(8, 1);
        for now in 0..50 {
            for _ in 0..4 {
                assert_eq!(p.access(now, 3), 0, "idle peers must cost nothing");
            }
        }
        assert_eq!(p.contention(), (0, 0));
    }

    #[test]
    fn reset_preserves_cycle_state() {
        let mut p = MetadataPorts::new(2, 1);
        assert_eq!(p.access(4, 0), 0);
        p.reset_counters();
        assert_eq!(p.contention(), (0, 0));
        // The op issued at cycle 4 still occupies its port slot.
        assert_eq!(p.access(4, 1), 1);
    }
}
