//! System configuration mirroring the paper's Table II.
//!
//! Four 4 GHz out-of-order cores (Intel Core 2-like), split 64 KB 2-way L1
//! caches, a shared 8 MB 16-way L2 in 16 banks, and IBM Power 6-like memory
//! latency/bandwidth.

/// Complete CMP configuration (paper Table II).
#[derive(Clone, Debug, PartialEq)]
pub struct SystemConfig {
    /// Number of cores (paper: 4).
    pub num_cores: usize,
    /// Fetch/dispatch/retire width (paper: 4-wide).
    pub width: usize,
    /// Reorder buffer entries (paper: 96).
    pub rob_entries: usize,
    /// Pre-dispatch (fetch) queue entries (paper: 16).
    pub fetch_queue: usize,
    /// L1 instruction cache capacity in bytes (paper: 64 KB).
    pub l1i_bytes: usize,
    /// L1-I associativity (paper: 2-way).
    pub l1i_ways: usize,
    /// Next-line prefetch depth. The paper's prefetcher runs continually
    /// two blocks ahead; our cores consume blocks faster (higher base
    /// IPC), so the default depth is 4 to keep next-line hits timely, as
    /// the paper's hit accounting assumes.
    pub next_line_depth: u64,
    /// L1 load-to-use latency in cycles (paper: 2).
    pub l1d_latency: u64,
    /// Shared L2 capacity in bytes (paper: 8 MB).
    pub l2_bytes: usize,
    /// L2 associativity (paper: 16-way).
    pub l2_ways: usize,
    /// L2 bank count (paper: 16, independently scheduled).
    pub l2_banks: usize,
    /// Minimum total L2 hit latency in cycles (paper: 20).
    pub l2_latency: u64,
    /// Cycles a bank's data pipeline is occupied per access (paper: one new
    /// access at most every 4 cycles).
    pub l2_bank_occupancy: u64,
    /// Maximum in-flight L2 accesses (paper: 64 MSHRs).
    pub l2_mshrs: usize,
    /// Main-memory access latency in cycles (45 ns at 4 GHz = 180).
    pub mem_latency: u64,
    /// Minimum cycles between memory transfers (bandwidth: 28.4 GB/s peak,
    /// 64 B transfer unit at 4 GHz ~= one block every 9 cycles).
    pub mem_gap: u64,
    /// Branch mispredict redirect penalty in cycles.
    pub mispredict_penalty: u64,
    /// Probability a store eventually produces an L2 writeback access
    /// (bandwidth model for the base-traffic denominator of Figure 12).
    pub store_writeback_prob: f64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            num_cores: 4,
            width: 4,
            rob_entries: 96,
            fetch_queue: 16,
            l1i_bytes: 64 * 1024,
            l1i_ways: 2,
            next_line_depth: 4,
            l1d_latency: 2,
            l2_bytes: 8 * 1024 * 1024,
            l2_ways: 16,
            l2_banks: 16,
            l2_latency: 20,
            l2_bank_occupancy: 4,
            l2_mshrs: 64,
            mem_latency: 180,
            mem_gap: 9,
            mispredict_penalty: 12,
            store_writeback_prob: 0.25,
        }
    }
}

impl SystemConfig {
    /// The paper's Table II configuration.
    pub fn table2() -> SystemConfig {
        SystemConfig::default()
    }

    /// A single-core variant for focused experiments and tests.
    pub fn single_core() -> SystemConfig {
        SystemConfig {
            num_cores: 1,
            ..SystemConfig::default()
        }
    }

    /// Renders the configuration as the paper's Table II rows.
    pub fn table_rows(&self) -> Vec<(String, String)> {
        vec![
            (
                "Cores".into(),
                format!(
                    "{} x 4.0 GHz OoO, {}-wide dispatch/retire",
                    self.num_cores, self.width
                ),
            ),
            (
                "ROB / fetch queue".into(),
                format!(
                    "{}-entry ROB, {}-entry pre-dispatch queue",
                    self.rob_entries, self.fetch_queue
                ),
            ),
            (
                "L1-I".into(),
                format!(
                    "{} KB {}-way, 64-byte lines, next-line prefetcher ({} ahead)",
                    self.l1i_bytes / 1024,
                    self.l1i_ways,
                    self.next_line_depth
                ),
            ),
            (
                "L2".into(),
                format!(
                    "{} MB {}-way, {} banks, {}-cycle latency, {} MSHRs",
                    self.l2_bytes / (1024 * 1024),
                    self.l2_ways,
                    self.l2_banks,
                    self.l2_latency,
                    self.l2_mshrs
                ),
            ),
            (
                "Memory".into(),
                format!(
                    "{}-cycle latency, one 64-byte transfer per {} cycles",
                    self.mem_latency, self.mem_gap
                ),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2() {
        let c = SystemConfig::table2();
        assert_eq!(c.num_cores, 4);
        assert_eq!(c.rob_entries, 96);
        assert_eq!(c.l1i_bytes, 64 * 1024);
        assert_eq!(c.l2_bytes, 8 * 1024 * 1024);
        assert_eq!(c.l2_banks, 16);
        assert_eq!(c.l2_latency, 20);
        assert_eq!(c.mem_latency, 180);
    }

    #[test]
    fn rows_render() {
        let rows = SystemConfig::table2().table_rows();
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().any(|(k, _)| k == "L2"));
    }
}
