//! Functional (timing-free) instruction-fetch model for trace collection.
//!
//! The paper's opportunity analyses (Figures 3, 5, 6, 10, 11) operate on
//! traces of L1-I *misses*: fetches not satisfied by the L1 instruction
//! cache or the next-line prefetcher (paper Section 4.1). This module
//! replays an instruction stream through a 64 KB 2-way L1-I with a
//! continually-running next-line prefetcher and records the miss sequence.

use tifs_trace::{BlockAddr, FetchRecord};

use crate::cache::SetAssocCache;
use crate::config::SystemConfig;

/// Functional L1-I + next-line prefetcher.
#[derive(Clone, Debug)]
pub struct FunctionalFetchModel {
    l1i: SetAssocCache,
    next_line_depth: u64,
    last_block: Option<BlockAddr>,
    accesses: u64,
    misses: u64,
}

impl FunctionalFetchModel {
    /// Builds the model from a system configuration.
    pub fn new(cfg: &SystemConfig) -> FunctionalFetchModel {
        FunctionalFetchModel {
            l1i: SetAssocCache::new(cfg.l1i_bytes, cfg.l1i_ways),
            next_line_depth: cfg.next_line_depth,
            last_block: None,
            accesses: 0,
            misses: 0,
        }
    }

    /// Feeds one instruction; returns `Some(block)` if its fetch was a
    /// miss (a new block transition not covered by L1 or next-line).
    pub fn access_pc(&mut self, pc: tifs_trace::Addr) -> Option<BlockAddr> {
        let block = pc.block();
        if self.last_block == Some(block) {
            return None;
        }
        self.last_block = Some(block);
        self.access_block(block).then_some(block)
    }

    /// Performs one block-transition access; returns `true` on a miss.
    pub fn access_block(&mut self, block: BlockAddr) -> bool {
        self.accesses += 1;
        let hit = self.l1i.access(block);
        // Fill the demanded block and the next-line prefetches.
        self.l1i.insert(block);
        for d in 1..=self.next_line_depth {
            self.l1i.insert(block.offset(d));
        }
        if !hit {
            self.misses += 1;
        }
        !hit
    }

    /// (block transitions, misses) so far.
    pub fn totals(&self) -> (u64, u64) {
        (self.accesses, self.misses)
    }

    /// Miss rate over block transitions.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// Replays `records` and collects the L1-I miss-address trace.
pub fn miss_trace<I>(records: I, cfg: &SystemConfig) -> Vec<BlockAddr>
where
    I: IntoIterator<Item = FetchRecord>,
{
    let mut model = FunctionalFetchModel::new(cfg);
    let mut out = Vec::new();
    for r in records {
        if let Some(b) = model.access_pc(r.pc) {
            out.push(b);
        }
    }
    out
}

/// As [`miss_trace`], but also returns the model for rate inspection.
pub fn miss_trace_with_model<I>(
    records: I,
    cfg: &SystemConfig,
) -> (Vec<BlockAddr>, FunctionalFetchModel)
where
    I: IntoIterator<Item = FetchRecord>,
{
    let mut model = FunctionalFetchModel::new(cfg);
    let mut out = Vec::new();
    for r in records {
        if let Some(b) = model.access_pc(r.pc) {
            out.push(b);
        }
    }
    (out, model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tifs_trace::Addr;

    fn cfg() -> SystemConfig {
        SystemConfig::table2()
    }

    fn pc_of_block(b: u64) -> Addr {
        Addr(b * 64)
    }

    #[test]
    fn sequential_run_misses_once() {
        // A long sequential run: only the first block misses; next-line
        // covers the rest.
        let mut m = FunctionalFetchModel::new(&cfg());
        assert!(m.access_block(BlockAddr(100)));
        for b in 101..150 {
            assert!(
                !m.access_block(BlockAddr(b)),
                "block {b} covered by next-line"
            );
        }
    }

    #[test]
    fn discontinuity_misses() {
        let mut m = FunctionalFetchModel::new(&cfg());
        m.access_block(BlockAddr(100));
        assert!(m.access_block(BlockAddr(5000)), "cold discontinuity target");
        assert!(!m.access_block(BlockAddr(100)), "warm return target");
    }

    #[test]
    fn capacity_misses_on_large_working_set() {
        // Working set far exceeding 64 KB (1024 blocks): revisits miss.
        let mut m = FunctionalFetchModel::new(&cfg());
        // Touch 4096 distinct blocks, strided to avoid next-line coverage.
        for i in 0..4096u64 {
            m.access_block(BlockAddr(i * 16));
        }
        let (_, misses_first) = m.totals();
        assert_eq!(misses_first, 4096);
        // Second pass still misses: the set long since evicted.
        for i in 0..4096u64 {
            assert!(m.access_block(BlockAddr(i * 16)));
        }
    }

    #[test]
    fn small_working_set_is_resident() {
        // Stride 5 exceeds the next-line depth (4), so each access misses
        // on the first pass; the touched region (blocks 0..504 including
        // fills) maps one block per set and stays fully resident after.
        let mut m = FunctionalFetchModel::new(&cfg());
        for _ in 0..10 {
            for i in 0..100u64 {
                m.access_block(BlockAddr(i * 5));
            }
        }
        let (acc, miss) = m.totals();
        assert_eq!(acc, 1000);
        assert_eq!(miss, 100, "only the first pass misses");
    }

    #[test]
    fn pc_level_collapses_within_block() {
        let mut m = FunctionalFetchModel::new(&cfg());
        assert!(m.access_pc(pc_of_block(7)).is_some());
        assert!(m.access_pc(Addr(7 * 64 + 4)).is_none(), "same block");
        assert!(m.access_pc(Addr(7 * 64 + 60)).is_none());
        let (acc, _) = m.totals();
        assert_eq!(acc, 1);
    }

    #[test]
    fn miss_trace_end_to_end() {
        use tifs_trace::workload::{Workload, WorkloadSpec};
        let w = Workload::build(&WorkloadSpec::tiny_test(), 9);
        let records: Vec<_> = w.walker(0).take(100_000).collect();
        let (trace, model) = miss_trace_with_model(records, &cfg());
        // The tiny workload fits in L1 after warmup, so misses are rare but
        // must exist (cold paths + traps).
        assert!(!trace.is_empty());
        assert!(model.miss_rate() < 0.5);
    }
}
