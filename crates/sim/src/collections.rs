//! Deterministic, cache-friendly replacements for the std collections
//! that used to sit on the per-cycle simulation path.
//!
//! The structures themselves now live in the shared `tifs-collections`
//! crate, because the SEQUITUR grammar engine (`tifs-sequitur`) adopted
//! the same open-addressed idiom for its digram index and the two crates
//! must not depend on each other. This module re-exports them under the
//! path the simulator has always used; see `tifs_collections` for the
//! full documentation and the design notes on structural drain order
//! ([`FillQueue`]) and backward-shift deletion ([`BlockMap`]).
//!
//! Both remain semantically equivalent to the `HashMap`-based structures
//! they replaced (the `fill_queue_matches_hashmap_model` /
//! `block_map_matches_hashmap_model` proptests in `tests/` pin this);
//! the difference is purely cost and the determinism of drain order.

pub use tifs_collections::{BlockMap, FillQueue};
