//! Cycle-level core model: decoupled fetch unit with next-line prefetcher,
//! pre-dispatch queue, and an in-order-retire ROB back end.
//!
//! The model replays the committed instruction stream. The front end is
//! faithful (per-block L1-I lookups, next-line prefetching, prefetcher
//! supply, fill latencies, branch-mispredict redirect bubbles); the back
//! end is mechanistic but simplified (per-instruction completion latencies
//! inside a real ROB, so load overlap, ROB fill-up, and retire-order
//! effects emerge naturally). This is the fidelity level the paper's
//! metrics need: instruction-fetch stalls are on the critical path and are
//! modelled precisely, while back-end scheduling detail affects all
//! configurations identically.

use std::collections::VecDeque;

use tifs_trace::{BlockAddr, FetchRecord, MemClass};

use crate::bpred::{HybridPredictor, ReturnAddressStack, TargetBuffer};
use crate::cache::SetAssocCache;
use crate::collections::FillQueue;
use crate::config::SystemConfig;
use crate::l2::{L2ReqKind, L2};
use crate::prefetch::{FetchKind, IPrefetcher, PrefetchCtx};
use crate::stats::CoreStats;

#[derive(Clone, Copy, Debug)]
struct QEntry {
    mem: MemClass,
    /// `(block, supplied_by_prefetcher)` for the first instruction fetched
    /// after an L1-I miss; drives retirement-time miss logging.
    miss_tag: Option<(BlockAddr, bool)>,
}

#[derive(Clone, Copy, Debug)]
struct RobEntry {
    done_at: u64,
    miss_tag: Option<(BlockAddr, bool)>,
}

#[derive(Clone, Copy, Debug)]
struct FillWait {
    block: BlockAddr,
    ready: u64,
    miss_tag: Option<(BlockAddr, bool)>,
    /// False while an L2 demand request is being retried (MSHRs full).
    issued: bool,
}

enum Transition {
    Ready(Option<(BlockAddr, bool)>),
    Wait,
}

/// Baseline misses tracked in the sliding coverage window that defines
/// refill-window recovery (large enough to smooth phase noise, small
/// enough to react within a few hundred fetched blocks).
const COV_WINDOW: usize = 64;

/// Minimum post-flush samples before a refill window may close (a couple
/// of lucky early hits must not declare the metadata refilled).
const COV_MIN_SAMPLES: usize = 16;

/// One core of the simulated CMP.
pub struct Core<'a> {
    id: usize,
    width: usize,
    rob_cap: usize,
    fetch_q_cap: usize,
    l1d_latency: u64,
    next_line_depth: u64,
    mispredict_penalty: u64,
    store_writeback_prob: f64,

    stream: Box<dyn Iterator<Item = FetchRecord> + 'a>,
    l1i: SetAssocCache,
    nl_inflight: FillQueue,
    cur_block: Option<BlockAddr>,
    fill_wait: Option<FillWait>,
    pending_rec: Option<FetchRecord>,
    pending_tag: Option<(BlockAddr, bool)>,
    fetch_q: VecDeque<QEntry>,
    rob: VecDeque<RobEntry>,
    stalled_until: u64,

    bpred: HybridPredictor,
    ras: ReturnAddressStack,
    btb: TargetBuffer,
    rng_state: u64,

    stats: CoreStats,
    /// Retirement quota; the core freezes once reached.
    quota: u64,
    finished_at: Option<u64>,
    /// Cycle at which the current measurement epoch began.
    epoch: u64,

    /// Sliding window of baseline-miss outcomes (`true` = covered by the
    /// evaluated prefetcher), defining the running coverage a flush must
    /// recover to.
    cov_window: VecDeque<bool>,
    /// Covered outcomes currently in `cov_window`.
    cov_hits: usize,
    /// Open metadata-refill window: the pre-flush coverage mean the
    /// post-flush window must reach before the window closes.
    refill_target: Option<f64>,
    /// Whether the open refill window has seen a baseline miss yet.
    /// Billing starts at the first post-flush miss: a core running
    /// entirely out of its L1-I has no metadata cost to recover, so an
    /// L1-resident phase (or workload) must not have its whole duration
    /// charged as refill.
    refill_billing: bool,
}

impl<'a> Core<'a> {
    /// Creates a core replaying `stream`.
    pub fn new(
        id: usize,
        cfg: &SystemConfig,
        stream: Box<dyn Iterator<Item = FetchRecord> + 'a>,
        quota: u64,
    ) -> Core<'a> {
        Core {
            id,
            width: cfg.width,
            rob_cap: cfg.rob_entries,
            fetch_q_cap: cfg.fetch_queue,
            l1d_latency: cfg.l1d_latency,
            next_line_depth: cfg.next_line_depth,
            mispredict_penalty: cfg.mispredict_penalty,
            store_writeback_prob: cfg.store_writeback_prob,
            stream,
            l1i: SetAssocCache::new(cfg.l1i_bytes, cfg.l1i_ways),
            nl_inflight: FillQueue::new(),
            cur_block: None,
            fill_wait: None,
            pending_rec: None,
            pending_tag: None,
            fetch_q: VecDeque::with_capacity(cfg.fetch_queue),
            rob: VecDeque::with_capacity(cfg.rob_entries),
            stalled_until: 0,
            bpred: HybridPredictor::table2(),
            ras: ReturnAddressStack::new(32),
            btb: TargetBuffer::new(4096),
            rng_state: 0x9E37_79B9_7F4A_7C15 ^ (id as u64 + 1),
            stats: CoreStats::default(),
            quota,
            finished_at: None,
            epoch: 0,
            cov_window: VecDeque::with_capacity(COV_WINDOW),
            cov_hits: 0,
            refill_target: None,
            refill_billing: false,
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Sets the retirement quota at which the core freezes.
    pub fn set_quota(&mut self, quota: u64) {
        self.quota = quota;
    }

    /// Zeroes statistics and unfreezes the core, preserving all
    /// microarchitectural state (cache contents, predictors, queues).
    /// `now` begins the new measurement epoch. Used to discard warmup.
    pub fn reset_stats(&mut self, now: u64) {
        self.stats = CoreStats::default();
        self.finished_at = None;
        self.quota = u64::MAX;
        self.epoch = now;
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.stats.retired
    }

    /// Whether the core has retired its quota.
    pub fn finished(&self) -> bool {
        self.finished_at.is_some()
    }

    fn rng(&mut self) -> u64 {
        let mut x = self.rng_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng_state = x;
        x
    }

    /// Synthetic data block address in a dedicated high region, spreading
    /// data traffic across L2 banks.
    fn data_block(&mut self) -> BlockAddr {
        BlockAddr(0x4000_0000 + (self.rng() % (1 << 22)))
    }

    /// Advances the core one cycle.
    pub fn tick(&mut self, now: u64, l2: &mut L2, pf: &mut dyn IPrefetcher) {
        if self.finished_at.is_some() {
            return;
        }
        if self.refill_target.is_some() && self.refill_billing {
            self.stats.refill_cycles += 1;
        }
        self.retire(now, l2, pf);
        if self.finished_at.is_some() {
            return;
        }
        self.dispatch(now, l2);
        self.fetch(now, l2, pf);
    }

    fn retire(&mut self, now: u64, l2: &mut L2, pf: &mut dyn IPrefetcher) {
        let mut n = 0;
        while n < self.width {
            match self.rob.front() {
                Some(e) if e.done_at <= now => {
                    let e = self.rob.pop_front().expect("checked front");
                    self.stats.retired += 1;
                    if let Some((block, supplied)) = e.miss_tag {
                        let mut ctx = PrefetchCtx {
                            now,
                            core: self.id,
                            l2,
                        };
                        pf.on_retire_fetch_miss(&mut ctx, block, supplied);
                    }
                    if self.stats.retired >= self.quota {
                        self.finished_at = Some(now);
                        self.stats.cycles = now - self.epoch;
                        return;
                    }
                    n += 1;
                }
                _ => break,
            }
        }
    }

    fn dispatch(&mut self, now: u64, l2: &mut L2) {
        let mut n = 0;
        while n < self.width && self.rob.len() < self.rob_cap {
            let Some(&entry) = self.fetch_q.front() else {
                break;
            };
            let done_at = match entry.mem {
                MemClass::None => now + 1,
                MemClass::LoadL1 => now + self.l1d_latency,
                MemClass::LoadL2 => {
                    let b = self.data_block();
                    match l2.request(now, b, L2ReqKind::Data, Some(true)) {
                        Some(resp) => resp.ready,
                        None => break, // MSHRs full; retry next cycle
                    }
                }
                MemClass::LoadMem => {
                    let b = self.data_block();
                    match l2.request(now, b, L2ReqKind::Data, Some(false)) {
                        Some(resp) => resp.ready,
                        None => break,
                    }
                }
                MemClass::Store => {
                    // Stores retire quickly; some produce writeback traffic.
                    if (self.rng() as f64 / u64::MAX as f64) < self.store_writeback_prob {
                        let b = self.data_block();
                        let _ = l2.request(now, b, L2ReqKind::Writeback, None);
                    }
                    now + 1
                }
            };
            self.fetch_q.pop_front();
            self.rob.push_back(RobEntry {
                done_at,
                miss_tag: entry.miss_tag,
            });
            n += 1;
        }
    }

    /// Moves completed next-line prefetches into the L1 and extends the
    /// chain: the paper's next-line prefetcher runs *continually* two
    /// blocks ahead of the fetch unit, so a completed fill triggers the
    /// next sequential prefetches. Without chaining, sequential runs would
    /// stall on every block (the pull-based distance of 2 blocks of work
    /// cannot cover the 20-cycle L2 latency).
    fn drain_next_line(&mut self, now: u64, l2: &mut L2) {
        // Completions pop in (ready, address) order structurally — the
        // issue order below feeds the L2 bank scheduler, and the fill
        // queue's drain order is part of its contract. Chained prefetches
        // issued mid-drain always complete after `now` (the L2 never
        // answers in zero cycles), so the drain terminates.
        while let Some((_, b, ())) = self.nl_inflight.pop_ready(now) {
            self.l1i.insert(b);
            if self
                .cur_block
                .is_some_and(|cur| b.0 >= cur.0 && b.0 - cur.0 <= 2 * self.next_line_depth + 2)
            {
                self.issue_next_line(now, b, l2);
            }
        }
    }

    fn issue_next_line(&mut self, now: u64, block: BlockAddr, l2: &mut L2) {
        for d in 1..=self.next_line_depth {
            let nb = block.offset(d);
            if self.l1i.peek(nb) || self.nl_inflight.contains(nb) {
                continue;
            }
            if let Some(resp) = l2.request(now, nb, L2ReqKind::IPrefetch, None) {
                self.nl_inflight.insert(resp.ready, nb, ());
            }
        }
    }

    fn fetch(&mut self, now: u64, l2: &mut L2, pf: &mut dyn IPrefetcher) {
        self.drain_next_line(now, l2);

        if self.stalled_until > now {
            return;
        }

        // Resolve an outstanding instruction fill.
        if let Some(fw) = self.fill_wait {
            if !fw.issued {
                match l2.request(now, fw.block, L2ReqKind::IFetch, None) {
                    Some(resp) => {
                        self.fill_wait = Some(FillWait {
                            ready: resp.ready,
                            issued: true,
                            ..fw
                        });
                    }
                    None => {
                        self.stats.fetch_stall_cycles += 1;
                        return;
                    }
                }
                self.stats.fetch_stall_cycles += 1;
                return;
            }
            if fw.ready <= now {
                self.l1i.insert(fw.block);
                self.cur_block = Some(fw.block);
                self.pending_tag = fw.miss_tag;
                self.fill_wait = None;
                self.issue_next_line(now, fw.block, l2);
            } else {
                self.stats.fetch_stall_cycles += 1;
                return;
            }
        }

        let mut fetched = 0;
        while fetched < self.width {
            if self.fetch_q.len() >= self.fetch_q_cap {
                break;
            }
            let rec = match self.pending_rec.take() {
                Some(r) => r,
                None => self
                    .stream
                    .next()
                    .expect("instruction streams are infinite"),
            };
            let block = rec.pc.block();
            let mut tag = self.pending_tag.take();
            if Some(block) != self.cur_block {
                match self.block_transition(now, block, l2, pf) {
                    Transition::Ready(t) => tag = t,
                    Transition::Wait => {
                        self.pending_rec = Some(rec);
                        break;
                    }
                }
            }
            self.fetch_q.push_back(QEntry {
                mem: rec.mem,
                miss_tag: tag,
            });
            {
                let mut ctx = PrefetchCtx {
                    now,
                    core: self.id,
                    l2,
                };
                pf.on_fetch_instr(&mut ctx, &rec);
            }
            self.train_control_flow(now, &rec);
            if rec.flush {
                self.on_context_switch(now, l2, pf);
            }
            fetched += 1;
            if self.stalled_until > now {
                break; // redirect bubble ends this fetch group
            }
        }
    }

    /// The stream marked a context switch at this instruction: the
    /// incoming program must not see the outgoing one's prefetcher
    /// metadata. The prefetcher invalidates this core's prediction state
    /// (caches are untouched), the core pays a kernel-entry redirect
    /// bubble, and a metadata-refill window opens: from the first
    /// post-flush baseline miss (an L1-resident phase has no metadata
    /// cost to recover) until windowed coverage recovers to its
    /// pre-flush running mean, elapsed cycles and baseline misses are
    /// charged to the refill counters.
    fn on_context_switch(&mut self, now: u64, l2: &mut L2, pf: &mut dyn IPrefetcher) {
        self.stats.flushes += 1;
        let mut ctx = PrefetchCtx {
            now,
            core: self.id,
            l2,
        };
        pf.on_flush(&mut ctx);
        let target = if self.cov_window.is_empty() {
            0.0
        } else {
            self.cov_hits as f64 / self.cov_window.len() as f64
        };
        self.cov_window.clear();
        self.cov_hits = 0;
        self.refill_target = Some(target);
        self.refill_billing = false;
        // Context-switch redirect: same bubble as a trap (kernel
        // entry/exit squashes the front end).
        self.stalled_until = self.stalled_until.max(now + 2 * self.mispredict_penalty);
    }

    /// Records one baseline-miss outcome (`covered` = supplied by the
    /// evaluated prefetcher) in the sliding coverage window, charging and
    /// possibly closing an open refill window.
    fn note_miss_outcome(&mut self, covered: bool) {
        if self.cov_window.len() == COV_WINDOW && self.cov_window.pop_front() == Some(true) {
            self.cov_hits -= 1;
        }
        self.cov_window.push_back(covered);
        if covered {
            self.cov_hits += 1;
        }
        if let Some(target) = self.refill_target {
            self.refill_billing = true;
            self.stats.refill_misses += 1;
            if self.cov_window.len() >= COV_MIN_SAMPLES
                && self.cov_hits as f64 >= target * self.cov_window.len() as f64
            {
                self.refill_target = None;
            }
        }
    }

    fn block_transition(
        &mut self,
        now: u64,
        block: BlockAddr,
        l2: &mut L2,
        pf: &mut dyn IPrefetcher,
    ) -> Transition {
        self.stats.fetch_blocks += 1;
        let l1_hit = self.l1i.access(block);

        // In-flight next-line prefetch covers the block: the paper counts
        // these as L1 hits (next-line is part of the base system), and
        // they are neither logged nor credited to the prefetcher. The
        // prefetcher may nevertheless hold the block and supply it earlier
        // than the in-flight fill (a "perfect and timely" prefetcher has
        // no such stalls at all).
        if !l1_hit {
            if let Some((ready, ())) = self.nl_inflight.remove(block) {
                self.stats.next_line_hits += 1;
                let supply = {
                    let mut ctx = PrefetchCtx {
                        now,
                        core: self.id,
                        l2,
                    };
                    pf.on_block_fetch(&mut ctx, block, FetchKind::NextLineInFlight)
                };
                let supplied_early = supply.is_some_and(|s| s < ready);
                let ready = supply.map_or(ready, |s| s.min(ready));
                // A substantially-exposed wait was an L1 miss at access
                // time (an MSHR hit on the in-flight prefetch) and is
                // logged at retirement — this is how TIFS streams come to
                // contain the sequential blocks that follow a
                // discontinuity, letting TIFS fetch them timely on the
                // next traversal (paper Section 7). Briefly-exposed waits
                // count as satisfied by next-line and are not logged,
                // keeping stream contents stable across traversals.
                let exposed = ready.saturating_sub(now) >= 8;
                let tag = if exposed || supplied_early {
                    Some((block, supplied_early))
                } else {
                    None
                };
                if ready <= now {
                    self.l1i.insert(block);
                    self.cur_block = Some(block);
                    self.issue_next_line(now, block, l2);
                    return Transition::Ready(tag);
                }
                self.fill_wait = Some(FillWait {
                    block,
                    ready,
                    miss_tag: tag,
                    issued: true,
                });
                return Transition::Wait;
            }
        }

        let supply = {
            let mut ctx = PrefetchCtx {
                now,
                core: self.id,
                l2,
            };
            pf.on_block_fetch(
                &mut ctx,
                block,
                if l1_hit {
                    FetchKind::L1Hit
                } else {
                    FetchKind::Miss
                },
            )
        };

        if l1_hit {
            self.stats.l1i_hits += 1;
            self.cur_block = Some(block);
            self.issue_next_line(now, block, l2);
            return Transition::Ready(None);
        }

        match supply {
            Some(ready) if ready <= now => {
                // SVB/FDIP-buffer hit: transfer into L1 immediately.
                self.stats.prefetch_hits += 1;
                self.note_miss_outcome(true);
                self.l1i.insert(block);
                self.cur_block = Some(block);
                self.issue_next_line(now, block, l2);
                Transition::Ready(Some((block, true)))
            }
            Some(ready) => {
                // Late prefetch: partially hidden latency.
                self.stats.prefetch_hits += 1;
                self.note_miss_outcome(true);
                self.fill_wait = Some(FillWait {
                    block,
                    ready,
                    miss_tag: Some((block, true)),
                    issued: true,
                });
                self.issue_next_line(now, block, l2);
                Transition::Wait
            }
            None => {
                self.stats.demand_misses += 1;
                self.note_miss_outcome(false);
                match l2.request(now, block, L2ReqKind::IFetch, None) {
                    Some(resp) => {
                        self.fill_wait = Some(FillWait {
                            block,
                            ready: resp.ready,
                            miss_tag: Some((block, false)),
                            issued: true,
                        });
                    }
                    None => {
                        self.fill_wait = Some(FillWait {
                            block,
                            ready: 0,
                            miss_tag: Some((block, false)),
                            issued: false,
                        });
                    }
                }
                self.issue_next_line(now, block, l2);
                Transition::Wait
            }
        }
    }

    fn train_control_flow(&mut self, now: u64, rec: &FetchRecord) {
        if let Some(b) = rec.branch {
            match b.kind {
                tifs_trace::BranchKind::Conditional => {
                    self.stats.cond_branches += 1;
                    let pred = self.bpred.predict(rec.pc);
                    self.bpred.update(rec.pc, b.taken);
                    if pred != b.taken {
                        self.stats.mispredicts += 1;
                        self.stalled_until = now + self.mispredict_penalty;
                    }
                }
                tifs_trace::BranchKind::Jump => {
                    self.btb.update(rec.pc, b.target);
                }
                tifs_trace::BranchKind::Call => {
                    self.ras.push(rec.fall_through());
                    // Indirect-call target change costs a redirect; the
                    // first encounter is a decode-time discovery (no bubble).
                    if let Some(t) = self.btb.predict(rec.pc) {
                        if t != b.target {
                            self.stats.mispredicts += 1;
                            self.stalled_until = now + self.mispredict_penalty;
                        }
                    }
                    self.btb.update(rec.pc, b.target);
                }
                tifs_trace::BranchKind::Return => {
                    let pred = self.ras.pop();
                    if pred != Some(b.target) {
                        self.stats.mispredicts += 1;
                        self.stalled_until = now + self.mispredict_penalty;
                    }
                }
            }
        }
        if rec.trap {
            // Trap redirect: flush-equivalent bubble.
            self.stalled_until = self.stalled_until.max(now + 2 * self.mispredict_penalty);
        }
    }
}

impl std::fmt::Debug for Core<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("id", &self.id)
            .field("retired", &self.stats.retired)
            .field("finished", &self.finished_at.is_some())
            .finish()
    }
}
