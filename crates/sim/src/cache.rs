//! Set-associative cache with true-LRU replacement.
//!
//! Used for the L1 instruction caches (64 KB, 2-way) and the shared L2
//! presence tracking (8 MB, 16-way). The cache tracks block residency only;
//! data contents are irrelevant to the simulation.

use tifs_trace::BlockAddr;

/// A set-associative cache of block addresses with true-LRU replacement.
///
/// # Example
///
/// ```
/// use tifs_sim::cache::SetAssocCache;
/// use tifs_trace::BlockAddr;
///
/// // Four sets, 2-way: 8 blocks of 64 bytes = 512 B.
/// let mut c = SetAssocCache::new(512, 2);
/// assert!(!c.access(BlockAddr(0)));
/// c.insert(BlockAddr(0));
/// assert!(c.access(BlockAddr(0)));
/// ```
/// Sentinel for an empty way. Unreachable as a real block address: block
/// addresses are byte addresses divided by the 64-byte block size.
const INVALID: BlockAddr = BlockAddr(u64::MAX);

#[derive(Clone, Debug)]
pub struct SetAssocCache {
    /// One contiguous `num_sets × ways` array: set `s` occupies
    /// `slots[s*ways .. (s+1)*ways]`, resident blocks packed MRU-first
    /// with `INVALID` filling the unused tail. A whole set is one cache
    /// line's worth of consecutive words, so the probe-every-access path
    /// touches memory once instead of chasing a per-set `Vec` pointer.
    slots: Vec<BlockAddr>,
    ways: usize,
    set_mask: u64,
    len: usize,
    insertions: u64,
    evictions: u64,
}

impl SetAssocCache {
    /// Creates a cache of `capacity_bytes` with `ways` ways and 64-byte
    /// blocks.
    ///
    /// # Panics
    ///
    /// Panics unless the resulting set count is a nonzero power of two.
    pub fn new(capacity_bytes: usize, ways: usize) -> SetAssocCache {
        let blocks = capacity_bytes / tifs_trace::BLOCK_BYTES as usize;
        assert!(ways > 0 && blocks >= ways, "invalid geometry");
        let num_sets = blocks / ways;
        assert!(
            num_sets.is_power_of_two(),
            "set count {num_sets} must be a power of two"
        );
        SetAssocCache {
            slots: vec![INVALID; num_sets * ways],
            ways,
            set_mask: (num_sets - 1) as u64,
            len: 0,
            insertions: 0,
            evictions: 0,
        }
    }

    #[inline]
    fn set_range(&self, block: BlockAddr) -> std::ops::Range<usize> {
        let s = (block.0 & self.set_mask) as usize * self.ways;
        s..s + self.ways
    }

    /// Looks up `block`, promoting it to MRU on hit. Returns `true` on hit.
    pub fn access(&mut self, block: BlockAddr) -> bool {
        let range = self.set_range(block);
        let set = &mut self.slots[range];
        match set.iter().position(|&b| b == block) {
            Some(pos) => {
                set.copy_within(0..pos, 1);
                set[0] = block;
                true
            }
            None => false,
        }
    }

    /// Checks residency without touching LRU state.
    pub fn peek(&self, block: BlockAddr) -> bool {
        self.slots[self.set_range(block)].contains(&block)
    }

    /// Inserts `block` at MRU (no-op promote if already resident). Returns
    /// the evicted block, if any.
    pub fn insert(&mut self, block: BlockAddr) -> Option<BlockAddr> {
        debug_assert_ne!(block, INVALID, "reserved sentinel address");
        let range = self.set_range(block);
        let set = &mut self.slots[range];
        if let Some(pos) = set.iter().position(|&b| b == block) {
            set.copy_within(0..pos, 1);
            set[0] = block;
            return None;
        }
        self.insertions += 1;
        let victim = *set.last().unwrap();
        set.copy_within(0..set.len() - 1, 1);
        set[0] = block;
        if victim == INVALID {
            self.len += 1;
            None
        } else {
            self.evictions += 1;
            Some(victim)
        }
    }

    /// Removes `block` if resident; returns whether it was present.
    pub fn invalidate(&mut self, block: BlockAddr) -> bool {
        let range = self.set_range(block);
        let set = &mut self.slots[range];
        match set.iter().position(|&b| b == block) {
            Some(pos) => {
                set.copy_within(pos + 1.., pos);
                *set.last_mut().unwrap() = INVALID;
                self.len -= 1;
                true
            }
            None => false,
        }
    }

    /// Total resident blocks.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of ways.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.slots.len() / self.ways
    }

    /// Lifetime (insertions, evictions).
    pub fn churn(&self) -> (u64, u64) {
        (self.insertions, self.evictions)
    }

    /// Every resident block, sorted by address (a deterministic snapshot
    /// of the cache's contents, independent of insertion history).
    pub fn resident_blocks(&self) -> Vec<BlockAddr> {
        let mut out: Vec<BlockAddr> = self
            .slots
            .iter()
            .copied()
            .filter(|&b| b != INVALID)
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(set: u64, tag: u64, num_sets: u64) -> BlockAddr {
        BlockAddr(tag * num_sets + set)
    }

    #[test]
    fn lru_within_set() {
        // 2-way: after inserting 3 blocks into one set, the first is gone.
        let mut c = SetAssocCache::new(512, 2); // 4 sets
        let (a, b, d) = (block(1, 0, 4), block(1, 1, 4), block(1, 2, 4));
        c.insert(a);
        c.insert(b);
        assert_eq!(c.insert(d), Some(a), "LRU victim is the oldest");
        assert!(c.peek(b) && c.peek(d) && !c.peek(a));
    }

    #[test]
    fn access_promotes() {
        let mut c = SetAssocCache::new(512, 2);
        let (a, b, d) = (block(2, 0, 4), block(2, 1, 4), block(2, 2, 4));
        c.insert(a);
        c.insert(b);
        assert!(c.access(a)); // a becomes MRU
        assert_eq!(c.insert(d), Some(b), "b is now LRU");
    }

    #[test]
    fn insert_existing_promotes_without_eviction() {
        let mut c = SetAssocCache::new(512, 2);
        let (a, b) = (block(0, 0, 4), block(0, 1, 4));
        c.insert(a);
        c.insert(b);
        assert_eq!(c.insert(a), None);
        let d = block(0, 2, 4);
        assert_eq!(c.insert(d), Some(b));
    }

    #[test]
    fn sets_are_independent() {
        let mut c = SetAssocCache::new(512, 2);
        for tag in 0..2 {
            for set in 0..4 {
                assert_eq!(c.insert(block(set, tag, 4)), None);
            }
        }
        assert_eq!(c.len(), 8);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = SetAssocCache::new(512, 2);
        let a = block(3, 0, 4);
        c.insert(a);
        assert!(c.invalidate(a));
        assert!(!c.invalidate(a));
        assert!(!c.peek(a));
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = SetAssocCache::new(1024, 4); // 16 blocks
        for i in 0..1000u64 {
            c.insert(BlockAddr(i * 7));
            assert!(c.len() <= 16);
        }
        let (ins, ev) = c.churn();
        assert_eq!(ins - ev, c.len() as u64);
    }

    #[test]
    fn l1i_geometry() {
        let c = SetAssocCache::new(64 * 1024, 2);
        assert_eq!(c.num_sets(), 512);
        assert_eq!(c.ways(), 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_sets() {
        SetAssocCache::new(3 * 64, 1);
    }
}
