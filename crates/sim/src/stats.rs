//! Simulation statistics: per-core counters and whole-run reports.

use crate::l2::L2Stats;

/// Per-core counters collected during a timing run.
#[derive(Clone, Debug, Default)]
pub struct CoreStats {
    /// Retired instructions.
    pub retired: u64,
    /// Elapsed cycles (set by the harness at run end).
    pub cycles: u64,
    /// Fetch-block transitions (L1-I lookups).
    pub fetch_blocks: u64,
    /// L1-I hits.
    pub l1i_hits: u64,
    /// Misses covered by the next-line prefetcher (counted as L1 hits in
    /// the paper's accounting, even when the fill is still in flight).
    pub next_line_hits: u64,
    /// Misses covered by the evaluated prefetcher (SVB / FDIP buffer) —
    /// "Coverage" in Figure 12.
    pub prefetch_hits: u64,
    /// Remaining demand misses serviced by L2 — "Miss" in Figure 12.
    pub demand_misses: u64,
    /// Cycles the fetch unit was stalled waiting on an instruction fill.
    pub fetch_stall_cycles: u64,
    /// Conditional-branch mispredicts (redirect bubbles).
    pub mispredicts: u64,
    /// Conditional branches seen.
    pub cond_branches: u64,
}

impl CoreStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// L1-I fetch misses after next-line prefetching (the paper's "miss"
    /// definition): prefetcher hits plus remaining demand misses.
    pub fn baseline_misses(&self) -> u64 {
        self.prefetch_hits + self.demand_misses
    }

    /// Fraction of baseline misses covered by the evaluated prefetcher.
    pub fn coverage(&self) -> f64 {
        let b = self.baseline_misses();
        if b == 0 {
            0.0
        } else {
            self.prefetch_hits as f64 / b as f64
        }
    }
}

/// Whole-run report: per-core stats, L2 stats, and prefetcher-specific
/// counters.
#[derive(Clone, Debug, Default)]
pub struct SimReport {
    /// Per-core statistics.
    pub cores: Vec<CoreStats>,
    /// Shared L2 statistics.
    pub l2: L2Stats,
    /// Total cycles simulated.
    pub cycles: u64,
    /// Prefetcher-specific named counters (e.g. SVB discards).
    pub prefetcher: Vec<(String, f64)>,
}

impl SimReport {
    /// Aggregate instructions retired across cores.
    pub fn total_retired(&self) -> u64 {
        self.cores.iter().map(|c| c.retired).sum()
    }

    /// Aggregate IPC (sum of per-core IPC).
    pub fn aggregate_ipc(&self) -> f64 {
        self.cores.iter().map(|c| c.ipc()).sum()
    }

    /// Aggregate coverage over all cores.
    pub fn coverage(&self) -> f64 {
        let hits: u64 = self.cores.iter().map(|c| c.prefetch_hits).sum();
        let base: u64 = self.cores.iter().map(|c| c.baseline_misses()).sum();
        if base == 0 {
            0.0
        } else {
            hits as f64 / base as f64
        }
    }

    /// Prefetcher counter by name, if recorded.
    pub fn prefetcher_counter(&self, name: &str) -> Option<f64> {
        self.prefetcher
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Speedup of this run over a baseline run of the same instruction
    /// count (ratio of aggregate IPC).
    pub fn speedup_over(&self, baseline: &SimReport) -> f64 {
        let b = baseline.aggregate_ipc();
        if b == 0.0 {
            0.0
        } else {
            self.aggregate_ipc() / b
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_math() {
        let c = CoreStats {
            prefetch_hits: 60,
            demand_misses: 40,
            ..CoreStats::default()
        };
        assert_eq!(c.baseline_misses(), 100);
        assert!((c.coverage() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = SimReport::default();
        assert_eq!(r.total_retired(), 0);
        assert_eq!(r.aggregate_ipc(), 0.0);
        assert_eq!(r.coverage(), 0.0);
        assert_eq!(r.prefetcher_counter("x"), None);
    }

    #[test]
    fn speedup_ratio() {
        let mk = |retired, cycles| {
            let mut r = SimReport::default();
            r.cores.push(CoreStats {
                retired,
                cycles,
                ..CoreStats::default()
            });
            r
        };
        let base = mk(1000, 1000);
        let fast = mk(1000, 800);
        assert!((fast.speedup_over(&base) - 1.25).abs() < 1e-12);
    }
}
