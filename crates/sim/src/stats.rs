//! Simulation statistics: per-core counters, whole-run reports, the
//! canonical report codec (the payload of the persistent report store),
//! and the deterministic merge of per-shard reports.

use tifs_trace::BlockAddr;

use crate::l2::{L2Event, L2ReqKind, L2Stats};

/// Per-core counters collected during a timing run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Retired instructions.
    pub retired: u64,
    /// Elapsed cycles (set by the harness at run end).
    pub cycles: u64,
    /// Fetch-block transitions (L1-I lookups).
    pub fetch_blocks: u64,
    /// L1-I hits.
    pub l1i_hits: u64,
    /// Misses covered by the next-line prefetcher (counted as L1 hits in
    /// the paper's accounting, even when the fill is still in flight).
    pub next_line_hits: u64,
    /// Misses covered by the evaluated prefetcher (SVB / FDIP buffer) —
    /// "Coverage" in Figure 12.
    pub prefetch_hits: u64,
    /// Remaining demand misses serviced by L2 — "Miss" in Figure 12.
    pub demand_misses: u64,
    /// Cycles the fetch unit was stalled waiting on an instruction fill.
    pub fetch_stall_cycles: u64,
    /// Conditional-branch mispredicts (redirect bubbles).
    pub mispredicts: u64,
    /// Conditional branches seen.
    pub cond_branches: u64,
    /// Context-switch flushes observed: each invalidated this core's
    /// prefetcher metadata (TIFS history/index pointers, FDIP state) and
    /// opened a metadata-refill window. Encoded in the trailing
    /// [`SIM_REPORT_FLUSH_LAYOUT_VERSION`] section, present only when a
    /// run saw flush activity — flushless reports keep their exact
    /// pre-flush byte layout.
    pub flushes: u64,
    /// Cycles spent inside refill windows: from each flush's first
    /// post-flush baseline miss (an L1-resident phase has no metadata to
    /// refill) until windowed coverage recovered to its pre-flush
    /// running mean (or the run ended).
    pub refill_cycles: u64,
    /// Baseline misses (prefetcher hits + demand misses) incurred inside
    /// refill windows — the metadata-refill cost of context switches.
    pub refill_misses: u64,
}

impl CoreStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// L1-I fetch misses after next-line prefetching (the paper's "miss"
    /// definition): prefetcher hits plus remaining demand misses.
    pub fn baseline_misses(&self) -> u64 {
        self.prefetch_hits + self.demand_misses
    }

    /// Fraction of baseline misses covered by the evaluated prefetcher.
    pub fn coverage(&self) -> f64 {
        let b = self.baseline_misses();
        if b == 0 {
            0.0
        } else {
            self.prefetch_hits as f64 / b as f64
        }
    }
}

/// Whole-run report: per-core stats, L2 stats, and prefetcher-specific
/// counters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimReport {
    /// Per-core statistics.
    pub cores: Vec<CoreStats>,
    /// Shared L2 statistics.
    pub l2: L2Stats,
    /// Total cycles simulated.
    pub cycles: u64,
    /// Prefetcher-specific named counters (e.g. SVB discards).
    pub prefetcher: Vec<(String, f64)>,
    /// Recorded L2 access timeline (empty unless event recording was on —
    /// the raw material of the contention-aware shard merge). Encoded as
    /// a trailing versioned section; a report with no events encodes to
    /// exactly the [`SIM_REPORT_LAYOUT_VERSION`] byte layout.
    pub l2_events: Vec<L2Event>,
    /// Instruction blocks resident in the L2 directory at the measurement
    /// epoch (sorted; recorded only with event recording on). The
    /// contention convolution unions these per-shard warm sets to seed
    /// the reconstructed shared directory. Rides in the same trailing
    /// versioned section as `l2_events`.
    pub l2_warm_blocks: Vec<BlockAddr>,
}

impl SimReport {
    /// Aggregate instructions retired across cores.
    pub fn total_retired(&self) -> u64 {
        self.cores.iter().map(|c| c.retired).sum()
    }

    /// Aggregate IPC (sum of per-core IPC).
    pub fn aggregate_ipc(&self) -> f64 {
        self.cores.iter().map(|c| c.ipc()).sum()
    }

    /// Aggregate coverage over all cores.
    pub fn coverage(&self) -> f64 {
        let hits: u64 = self.cores.iter().map(|c| c.prefetch_hits).sum();
        let base: u64 = self.cores.iter().map(|c| c.baseline_misses()).sum();
        if base == 0 {
            0.0
        } else {
            hits as f64 / base as f64
        }
    }

    /// Prefetcher counter by name, if recorded.
    pub fn prefetcher_counter(&self, name: &str) -> Option<f64> {
        self.prefetcher
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Speedup of this run over a baseline run of the same instruction
    /// count (ratio of aggregate IPC).
    pub fn speedup_over(&self, baseline: &SimReport) -> f64 {
        let b = baseline.aggregate_ipc();
        if b == 0.0 {
            0.0
        } else {
            self.aggregate_ipc() / b
        }
    }

    /// Canonical byte encoding of this report: fixed field order, fixed
    /// little-endian widths, floats as exact bit patterns. Two equal
    /// reports encode to identical bytes on every platform, so the
    /// persistent report store and the byte-identity determinism tests
    /// can compare encodings directly. The layout is pinned by
    /// [`SIM_REPORT_LAYOUT_VERSION`]; every field of every stat struct is
    /// destructured exhaustively, so adding a counter without extending
    /// the codec is a compile error, never silent data loss.
    pub fn to_canonical_bytes(&self) -> Vec<u8> {
        let SimReport {
            cores,
            l2,
            cycles,
            prefetcher,
            l2_events,
            l2_warm_blocks,
        } = self;
        let mut out = Vec::with_capacity(64 + cores.len() * 80 + prefetcher.len() * 24);
        let put = |out: &mut Vec<u8>, v: u64| out.extend_from_slice(&v.to_le_bytes());
        put(&mut out, cores.len() as u64);
        for core in cores {
            // Exhaustive destructure; the flush counters are encoded in
            // the trailing versioned section below, not in the layout-1
            // core block.
            let CoreStats {
                retired,
                cycles,
                fetch_blocks,
                l1i_hits,
                next_line_hits,
                prefetch_hits,
                demand_misses,
                fetch_stall_cycles,
                mispredicts,
                cond_branches,
                flushes: _,
                refill_cycles: _,
                refill_misses: _,
            } = core;
            for v in [
                retired,
                cycles,
                fetch_blocks,
                l1i_hits,
                next_line_hits,
                prefetch_hits,
                demand_misses,
                fetch_stall_cycles,
                mispredicts,
                cond_branches,
            ] {
                put(&mut out, *v);
            }
        }
        let L2Stats {
            accesses,
            inst_hits,
            inst_misses,
            mshr_rejects,
            mem_transfers,
            tag_updates,
            tag_update_drops,
            queue_delay,
        } = l2;
        for v in accesses {
            put(&mut out, *v);
        }
        for v in [
            inst_hits,
            inst_misses,
            mshr_rejects,
            mem_transfers,
            tag_updates,
            tag_update_drops,
            queue_delay,
        ] {
            put(&mut out, *v);
        }
        put(&mut out, *cycles);
        put(&mut out, prefetcher.len() as u64);
        for (name, value) in prefetcher {
            put(&mut out, name.len() as u64);
            out.extend_from_slice(name.as_bytes());
            put(&mut out, value.to_bits());
        }
        // Versioned trailing event section, present only when a timeline
        // was recorded: an eventless report keeps the layout-1 bytes
        // exactly, so every pre-existing store entry stays decodable and
        // warm.
        if !l2_events.is_empty() || !l2_warm_blocks.is_empty() {
            put(&mut out, u64::from(SIM_REPORT_EVENT_LAYOUT_VERSION));
            put(&mut out, l2_events.len() as u64);
            for e in l2_events {
                // Exhaustive destructure: extending L2Event without
                // extending the codec is a compile error.
                let L2Event {
                    issue,
                    block,
                    kind,
                    hit,
                } = *e;
                put(&mut out, issue);
                put(&mut out, block.0);
                put(&mut out, kind.index() as u64 | (u64::from(hit) << 8));
            }
            put(&mut out, l2_warm_blocks.len() as u64);
            for b in l2_warm_blocks {
                put(&mut out, b.0);
            }
        }
        // Versioned trailing flush section, present only when a run saw
        // context-switch activity: a flushless report keeps its exact
        // prior byte layout, so every pre-existing store entry stays
        // decodable and warm.
        if cores
            .iter()
            .any(|c| c.flushes != 0 || c.refill_cycles != 0 || c.refill_misses != 0)
        {
            put(&mut out, u64::from(SIM_REPORT_FLUSH_LAYOUT_VERSION));
            for core in cores {
                put(&mut out, core.flushes);
                put(&mut out, core.refill_cycles);
                put(&mut out, core.refill_misses);
            }
        }
        out
    }

    /// Decodes a report written by
    /// [`to_canonical_bytes`](Self::to_canonical_bytes). Round-trips
    /// exactly; any malformed input — truncation, trailing bytes, a
    /// non-UTF-8 counter name — is an error, never a wrong report.
    pub fn from_canonical_bytes(bytes: &[u8]) -> Result<SimReport, ReportCodecError> {
        let mut cur = Cursor { bytes, pos: 0 };
        let n_cores = usize_count(cur.u64()?)?;
        // A corrupt count cannot trigger an unbounded allocation: every
        // core costs 80 bytes, so cap the preallocation by what remains.
        let mut cores = Vec::with_capacity(n_cores.min(bytes.len() / 80 + 1));
        for _ in 0..n_cores {
            cores.push(CoreStats {
                retired: cur.u64()?,
                cycles: cur.u64()?,
                fetch_blocks: cur.u64()?,
                l1i_hits: cur.u64()?,
                next_line_hits: cur.u64()?,
                prefetch_hits: cur.u64()?,
                demand_misses: cur.u64()?,
                fetch_stall_cycles: cur.u64()?,
                mispredicts: cur.u64()?,
                cond_branches: cur.u64()?,
                // Filled in by the trailing flush section, when present.
                flushes: 0,
                refill_cycles: 0,
                refill_misses: 0,
            });
        }
        let mut accesses = [0u64; 6];
        for slot in &mut accesses {
            *slot = cur.u64()?;
        }
        let l2 = L2Stats {
            accesses,
            inst_hits: cur.u64()?,
            inst_misses: cur.u64()?,
            mshr_rejects: cur.u64()?,
            mem_transfers: cur.u64()?,
            tag_updates: cur.u64()?,
            tag_update_drops: cur.u64()?,
            queue_delay: cur.u64()?,
        };
        let cycles = cur.u64()?;
        let n_counters = usize_count(cur.u64()?)?;
        let mut prefetcher = Vec::with_capacity(n_counters.min(bytes.len() / 16 + 1));
        for _ in 0..n_counters {
            let len = usize_count(cur.u64()?)?;
            let raw = cur.take(len)?;
            let name = std::str::from_utf8(raw)
                .map_err(|_| ReportCodecError::BadCounterName)?
                .to_string();
            let value = f64::from_bits(cur.u64()?);
            prefetcher.push((name, value));
        }
        // Layout-1 payloads end here; extended payloads continue with
        // versioned trailing sections in strictly increasing tag order
        // (events, then flush counters), each present at most once.
        let mut l2_events = Vec::new();
        let mut l2_warm_blocks = Vec::new();
        let mut last_section = 0u64;
        while cur.pos != bytes.len() {
            let section = cur.u64()?;
            if section <= last_section {
                return Err(ReportCodecError::BadEventSection(section));
            }
            last_section = section;
            if section == u64::from(SIM_REPORT_EVENT_LAYOUT_VERSION) {
                let n_events = usize_count(cur.u64()?)?;
                l2_events.reserve(n_events.min(bytes.len() / 24 + 1));
                for _ in 0..n_events {
                    let issue = cur.u64()?;
                    let block = BlockAddr(cur.u64()?);
                    let packed = cur.u64()?;
                    // tifs-lint: allow(narrowing-cast) — `& 0xFF` bounds the
                    // value to 8 bits; the cast cannot lose information.
                    let kind = L2ReqKind::from_index((packed & 0xFF) as usize)
                        .ok_or(ReportCodecError::BadEventKind)?;
                    let hit = match packed >> 8 {
                        0 => false,
                        1 => true,
                        _ => return Err(ReportCodecError::BadEventKind),
                    };
                    l2_events.push(L2Event {
                        issue,
                        block,
                        kind,
                        hit,
                    });
                }
                let n_warm = usize_count(cur.u64()?)?;
                l2_warm_blocks.reserve(n_warm.min(bytes.len() / 8 + 1));
                for _ in 0..n_warm {
                    l2_warm_blocks.push(BlockAddr(cur.u64()?));
                }
                if l2_events.is_empty() && l2_warm_blocks.is_empty() {
                    // A present-but-empty section would make the encoding
                    // non-canonical (two byte strings for one report).
                    return Err(ReportCodecError::TrailingBytes);
                }
            } else if section == u64::from(SIM_REPORT_FLUSH_LAYOUT_VERSION) {
                let mut any = false;
                for core in &mut cores {
                    core.flushes = cur.u64()?;
                    core.refill_cycles = cur.u64()?;
                    core.refill_misses = cur.u64()?;
                    any |= core.flushes != 0 || core.refill_cycles != 0 || core.refill_misses != 0;
                }
                if !any {
                    // All-zero flush counters encode as no section at all.
                    return Err(ReportCodecError::TrailingBytes);
                }
            } else {
                return Err(ReportCodecError::BadEventSection(section));
            }
        }
        Ok(SimReport {
            cores,
            l2,
            cycles,
            prefetcher,
            l2_events,
            l2_warm_blocks,
        })
    }

    /// Deterministically merges per-shard reports (one independent
    /// single-core — or core-subset — run per shard) into one report:
    /// cores concatenate in shard order, L2 counters sum, `cycles` takes
    /// the slowest shard (the wall the merged run would have waited on),
    /// and prefetcher counters merge by name in first-appearance order
    /// with values summed. The merge is a pure fold in argument order, so
    /// identical inputs produce identical outputs whatever thread
    /// schedule produced them.
    pub fn merge_shards(parts: &[SimReport]) -> SimReport {
        let mut merged = SimReport::default();
        for part in parts {
            let SimReport {
                cores,
                l2,
                cycles,
                prefetcher,
                l2_events,
                l2_warm_blocks,
            } = part;
            merged.l2_events.extend(l2_events.iter().copied());
            merged.l2_warm_blocks.extend(l2_warm_blocks.iter().copied());
            merged.cores.extend(cores.iter().cloned());
            let L2Stats {
                accesses,
                inst_hits,
                inst_misses,
                mshr_rejects,
                mem_transfers,
                tag_updates,
                tag_update_drops,
                queue_delay,
            } = l2;
            for (slot, v) in merged.l2.accesses.iter_mut().zip(accesses) {
                *slot += v;
            }
            merged.l2.inst_hits += inst_hits;
            merged.l2.inst_misses += inst_misses;
            merged.l2.mshr_rejects += mshr_rejects;
            merged.l2.mem_transfers += mem_transfers;
            merged.l2.tag_updates += tag_updates;
            merged.l2.tag_update_drops += tag_update_drops;
            merged.l2.queue_delay += queue_delay;
            merged.cycles = merged.cycles.max(*cycles);
            for (name, value) in prefetcher {
                match merged.prefetcher.iter_mut().find(|(n, _)| n == name) {
                    Some((_, acc)) => *acc += value,
                    None => merged.prefetcher.push((name.clone(), *value)),
                }
            }
        }
        merged
    }
}

/// Version of the canonical [`SimReport`] byte layout for *eventless*
/// reports. Hashed into every report store key (alongside the container
/// format version), so a layout change re-addresses all cached reports
/// instead of misdecoding them.
pub const SIM_REPORT_LAYOUT_VERSION: u32 = 1;

/// Bumped layout version for reports carrying a recorded L2 event
/// timeline: the layout-1 fields followed by a trailing event section
/// tagged with this version. Eventless reports keep encoding as layout 1
/// byte-for-byte, so existing store entries for the coupled and
/// plain-sharded execution modes stay decodable and warm; only the
/// contention-aware mode addresses layout-2 content.
pub const SIM_REPORT_EVENT_LAYOUT_VERSION: u32 = 2;

/// Bumped layout version for reports carrying context-switch flush and
/// metadata-refill counters: a trailing section tagged with this version
/// holding `(flushes, refill_cycles, refill_misses)` per core. Reports
/// from flushless runs keep encoding exactly as before — the section is
/// emitted only when at least one counter is nonzero — so every existing
/// store entry stays decodable and warm; only workload mixes with context
/// switching enabled address flush-section content. Sections are ordered
/// by tag, so a report carrying both an event timeline and flush counters
/// encodes events first.
pub const SIM_REPORT_FLUSH_LAYOUT_VERSION: u32 = 3;

/// Errors decoding a canonical report payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReportCodecError {
    /// The payload ended inside a field.
    Truncated,
    /// Bytes remained after the last field.
    TrailingBytes,
    /// A prefetcher counter name was not valid UTF-8.
    BadCounterName,
    /// A trailing event section carried an unknown version tag.
    BadEventSection(u64),
    /// An event carried an invalid kind index or hit flag.
    BadEventKind,
    /// A count field exceeds the address space — it cannot possibly
    /// describe items present in the payload.
    CountOverflow,
}

impl std::fmt::Display for ReportCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReportCodecError::Truncated => write!(f, "truncated report payload"),
            ReportCodecError::TrailingBytes => write!(f, "trailing bytes in report payload"),
            ReportCodecError::BadCounterName => write!(f, "non-UTF-8 counter name"),
            ReportCodecError::BadEventSection(v) => {
                write!(f, "unknown event-section version {v}")
            }
            ReportCodecError::BadEventKind => write!(f, "invalid event kind or hit flag"),
            ReportCodecError::CountOverflow => write!(f, "count overflows the address space"),
        }
    }
}

/// Converts a decoded count to `usize`, rejecting values a 32-bit
/// target cannot address instead of silently truncating them.
fn usize_count(v: u64) -> Result<usize, ReportCodecError> {
    usize::try_from(v).map_err(|_| ReportCodecError::CountOverflow)
}

impl std::error::Error for ReportCodecError {}

/// Minimal bounds-checked reader over the canonical payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ReportCodecError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(ReportCodecError::Truncated)?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u64(&mut self) -> Result<u64, ReportCodecError> {
        let raw = self.take(8)?;
        Ok(u64::from_le_bytes(raw.try_into().expect("8-byte slice")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_math() {
        let c = CoreStats {
            prefetch_hits: 60,
            demand_misses: 40,
            ..CoreStats::default()
        };
        assert_eq!(c.baseline_misses(), 100);
        assert!((c.coverage() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = SimReport::default();
        assert_eq!(r.total_retired(), 0);
        assert_eq!(r.aggregate_ipc(), 0.0);
        assert_eq!(r.coverage(), 0.0);
        assert_eq!(r.prefetcher_counter("x"), None);
    }

    fn sample_report() -> SimReport {
        SimReport {
            cores: vec![
                CoreStats {
                    retired: 1000,
                    cycles: 500,
                    fetch_blocks: 300,
                    l1i_hits: 250,
                    next_line_hits: 20,
                    prefetch_hits: 15,
                    demand_misses: 15,
                    fetch_stall_cycles: 80,
                    mispredicts: 9,
                    cond_branches: 120,
                    flushes: 0,
                    refill_cycles: 0,
                    refill_misses: 0,
                },
                CoreStats {
                    retired: 900,
                    ..CoreStats::default()
                },
            ],
            l2: L2Stats {
                accesses: [1, 2, 3, 4, 5, 6],
                inst_hits: 7,
                inst_misses: 8,
                mshr_rejects: 9,
                mem_transfers: 10,
                tag_updates: 11,
                tag_update_drops: 12,
                queue_delay: 13,
            },
            cycles: 777,
            prefetcher: vec![("streams".into(), 4.0), ("discards".into(), 0.5)],
            l2_events: Vec::new(),
            l2_warm_blocks: Vec::new(),
        }
    }

    fn sample_events() -> Vec<L2Event> {
        vec![
            L2Event {
                issue: 3,
                block: BlockAddr(17),
                kind: L2ReqKind::IFetch,
                hit: false,
            },
            L2Event {
                issue: 3,
                block: BlockAddr(33),
                kind: L2ReqKind::Data,
                hit: true,
            },
            L2Event {
                issue: 90,
                block: BlockAddr(0x0800_0000),
                kind: L2ReqKind::ImlRead,
                hit: true,
            },
        ]
    }

    #[test]
    fn canonical_bytes_roundtrip_exactly() {
        let with_events = SimReport {
            l2_events: sample_events(),
            l2_warm_blocks: vec![BlockAddr(3), BlockAddr(99)],
            ..sample_report()
        };
        let warm_only = SimReport {
            l2_warm_blocks: vec![BlockAddr(7)],
            ..sample_report()
        };
        for report in [
            sample_report(),
            SimReport::default(),
            with_events,
            warm_only,
        ] {
            let bytes = report.to_canonical_bytes();
            let back = SimReport::from_canonical_bytes(&bytes).unwrap();
            assert_eq!(back, report);
            // Canonical: re-encoding yields the same bytes.
            assert_eq!(back.to_canonical_bytes(), bytes);
        }
    }

    #[test]
    fn eventless_reports_keep_the_layout_1_encoding() {
        // The trailing event section appears only when events exist:
        // every report the coupled and plain-sharded modes produce must
        // keep its pre-event-section bytes, so existing report-store
        // entries remain addressable and decodable.
        let eventless = sample_report();
        let mut with_events = eventless.clone();
        with_events.l2_events = sample_events();
        with_events.l2_warm_blocks = vec![BlockAddr(5)];
        let base = eventless.to_canonical_bytes();
        let extended = with_events.to_canonical_bytes();
        assert_eq!(
            &extended[..base.len()],
            &base[..],
            "the event section must be a pure suffix"
        );
        assert_eq!(
            extended.len() - base.len(),
            16 + 24 * with_events.l2_events.len() + 8 + 8 * with_events.l2_warm_blocks.len(),
            "section = version + count + 3 words per event + warm count + warm blocks"
        );
    }

    #[test]
    fn event_section_rejects_bad_version_and_kind() {
        let report = SimReport {
            l2_events: sample_events(),
            ..sample_report()
        };
        let base_len = sample_report().to_canonical_bytes().len();
        let bytes = report.to_canonical_bytes();
        // Unknown section version.
        let mut bad_version = bytes.clone();
        bad_version[base_len..base_len + 8].copy_from_slice(&99u64.to_le_bytes());
        assert_eq!(
            SimReport::from_canonical_bytes(&bad_version),
            Err(ReportCodecError::BadEventSection(99))
        );
        // Invalid kind index in the first event's packed word.
        let packed_at = base_len + 16 + 16;
        let mut bad_kind = bytes.clone();
        bad_kind[packed_at..packed_at + 8].copy_from_slice(&0xEEu64.to_le_bytes());
        assert_eq!(
            SimReport::from_canonical_bytes(&bad_kind),
            Err(ReportCodecError::BadEventKind)
        );
        // Truncation inside the section.
        assert_eq!(
            SimReport::from_canonical_bytes(&bytes[..bytes.len() - 4]),
            Err(ReportCodecError::Truncated)
        );
    }

    #[test]
    fn flush_section_roundtrips_and_stays_a_pure_suffix() {
        // A flushless report keeps its exact prior bytes; flush counters
        // ride a versioned trailing section after the event section.
        let flushless = sample_report();
        let mut flushed = flushless.clone();
        flushed.cores[0].flushes = 4;
        flushed.cores[0].refill_cycles = 230;
        flushed.cores[0].refill_misses = 31;
        let base = flushless.to_canonical_bytes();
        let extended = flushed.to_canonical_bytes();
        assert_eq!(
            &extended[..base.len()],
            &base[..],
            "the flush section must be a pure suffix"
        );
        assert_eq!(
            extended.len() - base.len(),
            8 + 24 * flushed.cores.len(),
            "section = version + 3 words per core"
        );
        let back = SimReport::from_canonical_bytes(&extended).unwrap();
        assert_eq!(back, flushed);
        assert_eq!(back.to_canonical_bytes(), extended);
        // Both trailing sections together, in increasing tag order.
        let mut both = flushed.clone();
        both.l2_events = sample_events();
        let bytes = both.to_canonical_bytes();
        let back = SimReport::from_canonical_bytes(&bytes).unwrap();
        assert_eq!(back, both);
        assert_eq!(back.to_canonical_bytes(), bytes);
    }

    #[test]
    fn flush_section_rejects_non_canonical_payloads() {
        let flushless = sample_report();
        let base = flushless.to_canonical_bytes();
        // An all-zero flush section encodes as no section at all: a
        // present-but-empty one would give the report two byte strings.
        let mut padded = base.clone();
        padded.extend_from_slice(&u64::from(SIM_REPORT_FLUSH_LAYOUT_VERSION).to_le_bytes());
        for _ in 0..flushless.cores.len() * 3 {
            padded.extend_from_slice(&0u64.to_le_bytes());
        }
        assert_eq!(
            SimReport::from_canonical_bytes(&padded),
            Err(ReportCodecError::TrailingBytes)
        );
        // Sections must arrive in strictly increasing tag order: flush
        // before events (or any repeat) is rejected.
        let mut flushed = flushless.clone();
        flushed.cores[1].flushes = 1;
        let mut reordered = flushed.to_canonical_bytes();
        reordered.extend_from_slice(&u64::from(SIM_REPORT_FLUSH_LAYOUT_VERSION).to_le_bytes());
        for _ in 0..flushed.cores.len() * 3 {
            reordered.extend_from_slice(&1u64.to_le_bytes());
        }
        assert_eq!(
            SimReport::from_canonical_bytes(&reordered),
            Err(ReportCodecError::BadEventSection(u64::from(
                SIM_REPORT_FLUSH_LAYOUT_VERSION
            )))
        );
        // Truncation inside the section.
        let full = flushed.to_canonical_bytes();
        assert_eq!(
            SimReport::from_canonical_bytes(&full[..full.len() - 4]),
            Err(ReportCodecError::Truncated)
        );
    }

    #[test]
    fn canonical_decode_rejects_malformed_payloads() {
        let bytes = sample_report().to_canonical_bytes();
        for cut in [bytes.len() - 1, bytes.len() / 2, 7, 0] {
            assert_eq!(
                SimReport::from_canonical_bytes(&bytes[..cut]),
                Err(ReportCodecError::Truncated),
                "prefix of {cut} bytes must not decode"
            );
        }
        // Trailing garbage cannot masquerade as an event section: too
        // short to hold the section header it reads as a truncation, a
        // full word with the wrong tag as an unknown section version.
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(
            SimReport::from_canonical_bytes(&trailing),
            Err(ReportCodecError::Truncated)
        );
        let mut tagged = bytes.clone();
        tagged.extend_from_slice(&7u64.to_le_bytes());
        assert_eq!(
            SimReport::from_canonical_bytes(&tagged),
            Err(ReportCodecError::BadEventSection(7))
        );
        // A corrupt core count larger than the payload must error, not
        // allocate or loop.
        let mut huge = bytes;
        huge[..8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            SimReport::from_canonical_bytes(&huge),
            Err(ReportCodecError::Truncated)
        );
    }

    #[test]
    fn merge_concatenates_cores_and_sums_l2() {
        let a = sample_report();
        let mut b = sample_report();
        b.cycles = 1000;
        b.prefetcher = vec![("discards".into(), 1.5), ("late".into(), 2.0)];
        let merged = SimReport::merge_shards(&[a.clone(), b.clone()]);
        assert_eq!(merged.cores.len(), 4);
        assert_eq!(merged.cores[..2], a.cores[..]);
        assert_eq!(merged.cores[2..], b.cores[..]);
        assert_eq!(merged.l2.accesses, [2, 4, 6, 8, 10, 12]);
        assert_eq!(merged.l2.queue_delay, 26);
        assert_eq!(merged.cycles, 1000, "merged cycles is the slowest shard");
        assert_eq!(
            merged.prefetcher,
            vec![
                ("streams".into(), 4.0),
                ("discards".into(), 2.0),
                ("late".into(), 2.0)
            ],
            "counters merge by name in first-appearance order"
        );
        // Merging a single part is the identity.
        assert_eq!(SimReport::merge_shards(std::slice::from_ref(&a)), a);
        // Merging nothing is the empty report.
        assert_eq!(SimReport::merge_shards(&[]), SimReport::default());
    }

    #[test]
    fn speedup_ratio() {
        let mk = |retired, cycles| {
            let mut r = SimReport::default();
            r.cores.push(CoreStats {
                retired,
                cycles,
                ..CoreStats::default()
            });
            r
        };
        let base = mk(1000, 1000);
        let fast = mk(1000, 800);
        assert!((fast.speedup_over(&base) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn hostile_counts_error_instead_of_truncating() {
        // Counts decode through `usize_count` (try_from, never `as`), so
        // a hostile u64 count is an error on every target width — here
        // it manifests as truncation because the payload cannot actually
        // hold that many items.
        let put = |b: &mut Vec<u8>, v: u64| b.extend_from_slice(&v.to_le_bytes());
        let mut cores = Vec::new();
        put(&mut cores, u64::MAX);
        assert_eq!(
            SimReport::from_canonical_bytes(&cores),
            Err(ReportCodecError::Truncated)
        );

        // Same for a counter-name length deep in an otherwise valid
        // payload: 0 cores, a zeroed L2 block, cycles, one counter whose
        // name claims u64::MAX bytes.
        let mut name_len = Vec::new();
        put(&mut name_len, 0);
        for _ in 0..13 {
            put(&mut name_len, 0);
        }
        put(&mut name_len, 0);
        put(&mut name_len, 1);
        put(&mut name_len, u64::MAX);
        assert_eq!(
            SimReport::from_canonical_bytes(&name_len),
            Err(ReportCodecError::Truncated)
        );
    }
}
