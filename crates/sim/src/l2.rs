//! Shared L2 cache timing model: 16 banks with independently-scheduled
//! pipelines, MSHR-limited concurrency, and a bandwidth-limited memory
//! behind it (paper Table II and Section 6.1).
//!
//! The model is completion-time based: a request immediately returns the
//! cycle at which its data arrives at the requester, accounting for bank
//! occupancy, queueing, L2 hit latency, and memory latency/bandwidth.
//! Requesters poll their completion cycles; there are no callbacks.
//!
//! Instruction-block residency is tracked in a real 8 MB 16-way LRU
//! directory, so compulsory misses go to memory and the Index-Table
//! embedding can observe evictions. Data requests carry a *forced* outcome
//! drawn from the workload's latency profile (the synthetic data working
//! set is not modelled at address granularity); they still contend for
//! banks, MSHRs, and memory bandwidth. This preserves the contention
//! effects Figure 13 measures (virtualized IML traffic vs. performance)
//! without simulating a data heap.

use tifs_trace::BlockAddr;

use crate::cache::SetAssocCache;
use crate::config::SystemConfig;

/// Classes of L2 access, for traffic accounting (paper Figure 12).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum L2ReqKind {
    /// Demand instruction fetch from an L1-I miss.
    IFetch,
    /// Instruction prefetch (next-line, FDIP, or TIFS stream fetch).
    IPrefetch,
    /// Data read (L1-D miss).
    Data,
    /// Writeback from a store.
    Writeback,
    /// Virtualized Instruction Miss Log read (12 pointers per block).
    ImlRead,
    /// Virtualized Instruction Miss Log write.
    ImlWrite,
}

impl L2ReqKind {
    /// All kinds, for iteration in reports.
    pub const ALL: [L2ReqKind; 6] = [
        L2ReqKind::IFetch,
        L2ReqKind::IPrefetch,
        L2ReqKind::Data,
        L2ReqKind::Writeback,
        L2ReqKind::ImlRead,
        L2ReqKind::ImlWrite,
    ];

    /// Stable position of this kind in [`ALL`](Self::ALL) (the accounting
    /// slot and the canonical event-encoding tag).
    pub fn index(self) -> usize {
        match self {
            L2ReqKind::IFetch => 0,
            L2ReqKind::IPrefetch => 1,
            L2ReqKind::Data => 2,
            L2ReqKind::Writeback => 3,
            L2ReqKind::ImlRead => 4,
            L2ReqKind::ImlWrite => 5,
        }
    }

    /// Kind at position `i` of [`ALL`](Self::ALL), if valid.
    pub fn from_index(i: usize) -> Option<L2ReqKind> {
        Self::ALL.get(i).copied()
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            L2ReqKind::IFetch => "ifetch",
            L2ReqKind::IPrefetch => "iprefetch",
            L2ReqKind::Data => "data",
            L2ReqKind::Writeback => "writeback",
            L2ReqKind::ImlRead => "iml-read",
            L2ReqKind::ImlWrite => "iml-write",
        }
    }
}

/// Outcome of an accepted L2 request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct L2Response {
    /// Cycle at which data arrives at the requester.
    pub ready: u64,
    /// Whether the access hit in L2.
    pub hit: bool,
}

/// One recorded L2 access for post-hoc contention reconstruction: the
/// *intrinsic* issue cycle (when the requester presented the access,
/// before any bank queueing), the block (which determines the bank), the
/// traffic kind, and whether the access went to memory. Recording is off
/// by default ([`L2::set_record_events`]); the contention-aware sharded
/// execution mode records each shard's timeline and replays the merged
/// timelines through a shared [`ChannelModel`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct L2Event {
    /// Issue cycle, relative to the current measurement epoch.
    pub issue: u64,
    /// Accessed block (bank = block mod bank count).
    pub block: BlockAddr,
    /// Traffic kind.
    pub kind: L2ReqKind,
    /// Whether the access hit (misses occupy the memory channel).
    pub hit: bool,
}

/// Per-event delay breakdown computed by [`ChannelModel::issue`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChannelDelay {
    /// Cycles spent queueing for the bank.
    pub queue: u64,
    /// Cycles spent waiting for the memory channel (misses only).
    pub mem_wait: u64,
}

impl ChannelDelay {
    /// Total channel-imposed delay of the event.
    pub fn total(&self) -> u64 {
        self.queue + self.mem_wait
    }
}

/// The bank-occupancy / memory-channel half of the L2 timing model,
/// replayable over recorded [`L2Event`] timelines. [`issue`]
/// (ChannelModel::issue) applies exactly the arithmetic [`L2::request`]
/// applies to a live access — same bank mapping, same occupancy window,
/// same `mem_gap` single-channel spacing — so replaying one shard's own
/// timeline reproduces the delays that shard observed, and replaying the
/// *merged* timelines of several shards reconstructs the queueing they
/// would have inflicted on each other behind one shared L2.
#[derive(Clone, Debug)]
pub struct ChannelModel {
    banks_free: Vec<u64>,
    mem_next_free: u64,
    occupancy: u64,
    latency: u64,
    mem_gap: u64,
}

impl ChannelModel {
    /// Builds the channel model from a system configuration.
    pub fn new(cfg: &SystemConfig) -> ChannelModel {
        ChannelModel {
            banks_free: vec![0; cfg.l2_banks],
            mem_next_free: 0,
            occupancy: cfg.l2_bank_occupancy,
            latency: cfg.l2_latency,
            mem_gap: cfg.mem_gap,
        }
    }

    /// Schedules one event on the shared channel and returns the delay it
    /// experiences. Events must be presented in nondecreasing `issue`
    /// order per originating shard (the order [`L2`] recorded them).
    pub fn issue(&mut self, e: &L2Event) -> ChannelDelay {
        let bank = (e.block.0 % self.banks_free.len() as u64) as usize;
        let start = e.issue.max(self.banks_free[bank]);
        let queue = start - e.issue;
        self.banks_free[bank] = start + self.occupancy;
        let mem_wait = if e.hit {
            0
        } else {
            let at_mem = start + self.latency;
            let mem_start = at_mem.max(self.mem_next_free);
            self.mem_next_free = mem_start + self.mem_gap;
            mem_start - at_mem
        };
        ChannelDelay { queue, mem_wait }
    }
}

/// Aggregate L2 statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct L2Stats {
    /// Accesses by kind, in [`L2ReqKind::ALL`] order.
    pub accesses: [u64; 6],
    /// Instruction-directory hits/misses (IFetch + IPrefetch only).
    pub inst_hits: u64,
    /// Instruction-directory misses.
    pub inst_misses: u64,
    /// Requests rejected because all MSHRs were busy.
    pub mshr_rejects: u64,
    /// Memory transfers performed.
    pub mem_transfers: u64,
    /// Index-Table pointer updates applied to the tag pipeline.
    pub tag_updates: u64,
    /// Index-Table pointer updates dropped due to back-pressure.
    pub tag_update_drops: u64,
    /// Total cycles of bank queueing delay across accesses.
    pub queue_delay: u64,
}

impl L2Stats {
    /// Accesses of one kind.
    pub fn of(&self, kind: L2ReqKind) -> u64 {
        self.accesses[kind.index()]
    }

    /// The paper's Figure 12 "base traffic" denominator: data reads,
    /// instruction fetches (demand + prefetch), and writebacks.
    pub fn base_traffic(&self) -> u64 {
        self.of(L2ReqKind::IFetch)
            + self.of(L2ReqKind::IPrefetch)
            + self.of(L2ReqKind::Data)
            + self.of(L2ReqKind::Writeback)
    }

    /// TIFS-added traffic: IML reads and writes.
    pub fn iml_traffic(&self) -> u64 {
        self.of(L2ReqKind::ImlRead) + self.of(L2ReqKind::ImlWrite)
    }
}

/// The shared L2 and memory-side timing model.
#[derive(Clone, Debug)]
pub struct L2 {
    banks_free: Vec<u64>,
    tag_free: Vec<u64>,
    directory: SetAssocCache,
    inflight: Vec<u64>,
    mem_next_free: u64,
    evictions: Vec<BlockAddr>,
    cfg: L2Config,
    stats: L2Stats,
    record_events: bool,
    events: Vec<L2Event>,
    event_epoch: u64,
    warm_blocks: Vec<BlockAddr>,
}

#[derive(Clone, Debug)]
struct L2Config {
    banks: usize,
    occupancy: u64,
    latency: u64,
    mshrs: usize,
    mem_latency: u64,
    mem_gap: u64,
    tag_backlog_limit: u64,
}

impl L2 {
    /// Builds the L2 from a system configuration.
    pub fn new(cfg: &SystemConfig) -> L2 {
        L2 {
            banks_free: vec![0; cfg.l2_banks],
            tag_free: vec![0; cfg.l2_banks],
            directory: SetAssocCache::new(cfg.l2_bytes, cfg.l2_ways),
            inflight: Vec::new(),
            mem_next_free: 0,
            evictions: Vec::new(),
            cfg: L2Config {
                banks: cfg.l2_banks,
                occupancy: cfg.l2_bank_occupancy,
                latency: cfg.l2_latency,
                mshrs: cfg.l2_mshrs,
                mem_latency: cfg.mem_latency,
                mem_gap: cfg.mem_gap,
                tag_backlog_limit: 32,
            },
            stats: L2Stats::default(),
            record_events: false,
            events: Vec::new(),
            event_epoch: 0,
            warm_blocks: Vec::new(),
        }
    }

    /// Enables or disables event recording: with recording on, every
    /// accepted request appends an [`L2Event`] (epoch-relative issue
    /// cycle, block, kind, hit) for post-hoc contention reconstruction.
    pub fn set_record_events(&mut self, on: bool) {
        self.record_events = on;
    }

    /// The events recorded since the last epoch reset.
    pub fn events(&self) -> &[L2Event] {
        &self.events
    }

    /// The instruction blocks that were resident in the directory at the
    /// last epoch reset, sorted (recorded only while event recording is
    /// on). The contention convolution unions these warm sets across
    /// shards: a block any shard warmed is warm for every core of the
    /// reconstructed shared L2.
    pub fn warm_blocks(&self) -> &[BlockAddr] {
        &self.warm_blocks
    }

    #[inline]
    fn bank_of(&self, block: BlockAddr) -> usize {
        (block.0 % self.cfg.banks as u64) as usize
    }

    fn reclaim_mshrs(&mut self, now: u64) {
        self.inflight.retain(|&done| done > now);
    }

    /// Issues a request. `forced_hit` dictates the L2 outcome for data-side
    /// accesses (whose addresses are synthetic); instruction-side and IML
    /// accesses pass `None` and consult the real directory.
    ///
    /// Forced-outcome requests are **real traffic**, not analysis probes:
    /// they charge bank occupancy, queueing delay, and (on a forced miss)
    /// memory bandwidth exactly like directory-backed requests, because
    /// the data-side contention they model is what Figure 13 measures.
    /// Analyses that only want residency use the side-effect-free
    /// [`contains_instruction`](Self::contains_instruction) probe, which
    /// touches neither statistics nor timing state (pinned by the
    /// `forced_outcome_data_requests_contend_by_design` regression test).
    ///
    /// Returns `None` when all MSHRs are busy; the requester retries later.
    pub fn request(
        &mut self,
        now: u64,
        block: BlockAddr,
        kind: L2ReqKind,
        forced_hit: Option<bool>,
    ) -> Option<L2Response> {
        // Reclaim lazily: `inflight` only gates the MSHR-full check, so
        // completed fills can sit in the list until the check would
        // otherwise trip — same accept/reject outcomes, without a
        // whole-list scan on every request.
        if self.inflight.len() >= self.cfg.mshrs {
            self.reclaim_mshrs(now);
            if self.inflight.len() >= self.cfg.mshrs {
                self.stats.mshr_rejects += 1;
                return None;
            }
        }
        self.stats.accesses[kind.index()] += 1;

        let bank = self.bank_of(block);
        let start = now.max(self.banks_free[bank]);
        self.stats.queue_delay += start - now;
        self.banks_free[bank] = start + self.cfg.occupancy;

        let hit = match (kind, forced_hit) {
            (_, Some(h)) => h,
            (L2ReqKind::IFetch | L2ReqKind::IPrefetch, None) => {
                let h = self.directory.access(block);
                if h {
                    self.stats.inst_hits += 1;
                } else {
                    self.stats.inst_misses += 1;
                }
                h
            }
            // IML blocks live in a private region the directory always
            // backs (the paper reserves IML storage in the L2 data array);
            // writebacks complete at the L2.
            (L2ReqKind::ImlRead | L2ReqKind::ImlWrite | L2ReqKind::Writeback, None) => true,
            (L2ReqKind::Data, None) => true,
        };

        let ready = if hit {
            start + self.cfg.latency
        } else {
            let mem_start = (start + self.cfg.latency).max(self.mem_next_free);
            self.mem_next_free = mem_start + self.cfg.mem_gap;
            self.stats.mem_transfers += 1;
            if matches!(kind, L2ReqKind::IFetch | L2ReqKind::IPrefetch) {
                if let Some(victim) = self.directory.insert(block) {
                    self.evictions.push(victim);
                }
            }
            mem_start + self.cfg.mem_latency
        };
        self.inflight.push(ready);
        if self.record_events {
            self.events.push(L2Event {
                issue: now - self.event_epoch,
                block,
                kind,
                hit,
            });
        }
        Some(L2Response { ready, hit })
    }

    /// Queues an Index-Table pointer update on a bank's tag pipeline.
    /// Updates are lowest priority and are dropped under back-pressure
    /// (paper Section 5.2.2). Returns `false` if dropped.
    pub fn tag_update(&mut self, now: u64, block: BlockAddr) -> bool {
        let bank = self.bank_of(block);
        if self.tag_free[bank].saturating_sub(now) > self.cfg.tag_backlog_limit {
            self.stats.tag_update_drops += 1;
            return false;
        }
        self.tag_free[bank] = self.tag_free[bank].max(now) + 1;
        self.stats.tag_updates += 1;
        true
    }

    /// Whether an instruction block is resident in L2 (no LRU update).
    pub fn contains_instruction(&self, block: BlockAddr) -> bool {
        self.directory.peek(block)
    }

    /// Drains instruction blocks evicted since the last call (for
    /// Index-Table invalidation in the embedded-tags organization).
    pub fn take_evictions(&mut self) -> Vec<BlockAddr> {
        std::mem::take(&mut self.evictions)
    }

    /// Swaps the pending-eviction list with `buf` (which must be empty),
    /// letting a caller that polls every cycle reuse one buffer instead
    /// of reallocating via [`take_evictions`](Self::take_evictions).
    pub fn swap_evictions(&mut self, buf: &mut Vec<BlockAddr>) {
        debug_assert!(buf.is_empty());
        std::mem::swap(&mut self.evictions, buf);
    }

    /// Statistics so far.
    pub fn stats(&self) -> &L2Stats {
        &self.stats
    }

    /// Zeroes statistics and recorded events, preserving directory
    /// contents and timing state (used to discard warmup from
    /// measurements). `now` begins the new measurement epoch that recorded
    /// event issue cycles are relative to. With event recording on, the
    /// directory's contents are snapshotted as the epoch's warm set.
    pub fn reset_stats(&mut self, now: u64) {
        self.stats = L2Stats::default();
        self.events.clear();
        self.event_epoch = now;
        if self.record_events {
            self.warm_blocks = self.directory.resident_blocks();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l2() -> L2 {
        L2::new(&SystemConfig::table2())
    }

    #[test]
    fn first_touch_goes_to_memory() {
        let mut c = l2();
        let r = c
            .request(0, BlockAddr(100), L2ReqKind::IFetch, None)
            .unwrap();
        assert!(!r.hit);
        assert!(r.ready >= 20 + 180, "compulsory miss: {r:?}");
        // Second touch hits at L2 latency.
        let r2 = c
            .request(1000, BlockAddr(100), L2ReqKind::IFetch, None)
            .unwrap();
        assert!(r2.hit);
        assert_eq!(r2.ready, 1000 + 20);
    }

    #[test]
    fn bank_conflicts_serialize() {
        let mut c = l2();
        let b = BlockAddr(16); // bank 0
        let same_bank = BlockAddr(32); // also bank 0
        let r1 = c.request(0, b, L2ReqKind::Data, Some(true)).unwrap();
        let r2 = c
            .request(0, same_bank, L2ReqKind::Data, Some(true))
            .unwrap();
        assert_eq!(r1.ready, 20);
        assert_eq!(r2.ready, 24, "second access waits for bank occupancy");
        // A different bank is unaffected.
        let r3 = c
            .request(0, BlockAddr(17), L2ReqKind::Data, Some(true))
            .unwrap();
        assert_eq!(r3.ready, 20);
    }

    #[test]
    fn mshrs_bound_concurrency() {
        let mut c = l2();
        let mut accepted = 0;
        for i in 0..100 {
            if c.request(0, BlockAddr(i), L2ReqKind::Data, Some(true))
                .is_some()
            {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 64, "64 MSHRs");
        assert_eq!(c.stats().mshr_rejects, 36);
        // After completions, capacity returns.
        assert!(c
            .request(10_000, BlockAddr(500), L2ReqKind::Data, Some(true))
            .is_some());
    }

    #[test]
    fn memory_bandwidth_spaces_transfers() {
        let mut c = l2();
        // Two compulsory misses on different banks start memory transfers
        // spaced by mem_gap.
        let r1 = c.request(0, BlockAddr(0), L2ReqKind::IFetch, None).unwrap();
        let r2 = c.request(0, BlockAddr(1), L2ReqKind::IFetch, None).unwrap();
        assert_eq!(r2.ready - r1.ready, 9, "one transfer per mem_gap cycles");
        assert_eq!(c.stats().mem_transfers, 2);
    }

    #[test]
    fn evictions_are_reported() {
        let mut cfg = SystemConfig::table2();
        cfg.l2_bytes = 64 * 64; // tiny: 64 blocks
        cfg.l2_ways = 1;
        let mut c = L2::new(&cfg);
        let mut now = 0;
        for i in 0..128 {
            c.request(now, BlockAddr(i), L2ReqKind::IFetch, None);
            now += 1000;
        }
        let ev = c.take_evictions();
        assert!(!ev.is_empty(), "direct-mapped tiny cache must evict");
        assert!(c.take_evictions().is_empty(), "drained");
    }

    #[test]
    fn tag_updates_drop_under_pressure() {
        let mut c = l2();
        let mut applied = 0;
        let mut dropped = 0;
        for _ in 0..100 {
            if c.tag_update(0, BlockAddr(0)) {
                applied += 1;
            } else {
                dropped += 1;
            }
        }
        assert!(
            applied >= 32 && dropped > 0,
            "applied={applied} dropped={dropped}"
        );
        // Pressure clears with time.
        assert!(c.tag_update(1_000_000, BlockAddr(0)));
    }

    #[test]
    fn event_recording_and_channel_replay_agree_with_live_timing() {
        // The ChannelModel must apply exactly the arithmetic `request`
        // applies: replaying a recorded timeline through a fresh model
        // reproduces every response cycle and the total queueing delay.
        let cfg = SystemConfig::table2();
        let mut c = L2::new(&cfg);
        c.set_record_events(true);
        let mut responses = Vec::new();
        let mut now = 0;
        for i in 0..200u64 {
            if i % 4 == 0 {
                now += 3; // cluster issues: bank conflicts + memory spacing
            }
            let kind = match i % 3 {
                0 => L2ReqKind::IFetch,
                1 => L2ReqKind::Data,
                _ => L2ReqKind::ImlRead,
            };
            let forced = (kind == L2ReqKind::Data).then_some(i % 5 != 0);
            if let Some(r) = c.request(now, BlockAddr(i * 7), kind, forced) {
                responses.push((now, r));
            }
        }
        let events = c.events().to_vec();
        assert_eq!(
            events.len(),
            responses.len(),
            "one event per accepted request"
        );
        assert!(events.iter().any(|e| !e.hit), "mix must include misses");
        let mut model = ChannelModel::new(&cfg);
        let mut queue_total = 0;
        for (e, (issued, resp)) in events.iter().zip(&responses) {
            assert_eq!(e.issue, *issued);
            assert_eq!(e.hit, resp.hit);
            let d = model.issue(e);
            queue_total += d.queue;
            let expect_ready = e.issue
                + d.queue
                + cfg.l2_latency
                + if e.hit {
                    0
                } else {
                    d.mem_wait + cfg.mem_latency
                };
            assert_eq!(resp.ready, expect_ready, "replay diverged at {e:?}");
        }
        assert_eq!(queue_total, c.stats().queue_delay);
        assert_eq!(
            events.iter().filter(|e| !e.hit).count() as u64,
            c.stats().mem_transfers
        );
    }

    #[test]
    fn reset_clears_events_and_rebases_epoch() {
        let mut c = l2();
        c.set_record_events(true);
        c.request(5, BlockAddr(1), L2ReqKind::IFetch, None);
        assert_eq!(c.events().len(), 1);
        assert_eq!(c.events()[0].issue, 5);
        c.reset_stats(100);
        assert!(c.events().is_empty(), "reset discards warmup events");
        c.request(150, BlockAddr(2), L2ReqKind::IFetch, None);
        assert_eq!(
            c.events()[0].issue,
            50,
            "issue cycles are epoch-relative after reset"
        );
    }

    #[test]
    fn recording_off_by_default() {
        let mut c = l2();
        c.request(0, BlockAddr(1), L2ReqKind::IFetch, None);
        assert!(c.events().is_empty());
    }

    #[test]
    fn base_traffic_accounting() {
        let mut c = l2();
        c.request(0, BlockAddr(1), L2ReqKind::IFetch, None);
        c.request(0, BlockAddr(2), L2ReqKind::Data, Some(true));
        c.request(0, BlockAddr(3), L2ReqKind::Writeback, None);
        c.request(0, BlockAddr(4), L2ReqKind::ImlRead, None);
        c.request(0, BlockAddr(5), L2ReqKind::ImlWrite, None);
        assert_eq!(c.stats().base_traffic(), 3);
        assert_eq!(c.stats().iml_traffic(), 2);
    }
}
