//! The four-core CMP harness: cores, shared L2, and the prefetcher under
//! evaluation, stepped cycle by cycle.

use tifs_trace::{BlockAddr, FetchRecord};

use crate::config::SystemConfig;
use crate::core::Core;
use crate::l2::L2;
use crate::prefetch::{IPrefetcher, PrefetchCtx};
use crate::stats::SimReport;

/// The chip multiprocessor under simulation.
///
/// # Example
///
/// ```
/// use tifs_sim::cmp::Cmp;
/// use tifs_sim::config::SystemConfig;
/// use tifs_sim::prefetch::NullPrefetcher;
/// use tifs_trace::workload::{Workload, WorkloadSpec};
///
/// let workload = Workload::build(&WorkloadSpec::tiny_test(), 1);
/// let cfg = SystemConfig::single_core();
/// let streams: Vec<_> = (0..cfg.num_cores)
///     .map(|c| Box::new(workload.walker(c)) as Box<dyn Iterator<Item = _>>)
///     .collect();
/// let mut cmp = Cmp::new(cfg, streams, Box::new(NullPrefetcher));
/// let report = cmp.run(20_000);
/// assert_eq!(report.total_retired(), 20_000);
/// assert!(report.aggregate_ipc() > 0.0);
/// ```
pub struct Cmp<'a> {
    cores: Vec<Core<'a>>,
    l2: L2,
    pf: Box<dyn IPrefetcher + 'a>,
    now: u64,
    /// Reused eviction-delivery buffer (see [`Cmp::tick`]).
    evict_scratch: Vec<BlockAddr>,
}

impl<'a> Cmp<'a> {
    /// Builds a CMP over per-core instruction streams and one prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if the number of streams differs from `cfg.num_cores`.
    pub fn new(
        cfg: SystemConfig,
        streams: Vec<Box<dyn Iterator<Item = FetchRecord> + 'a>>,
        pf: Box<dyn IPrefetcher + 'a>,
    ) -> Cmp<'a> {
        assert_eq!(
            streams.len(),
            cfg.num_cores,
            "one instruction stream per core"
        );
        let cores = streams
            .into_iter()
            .enumerate()
            .map(|(id, s)| Core::new(id, &cfg, s, u64::MAX))
            .collect();
        Cmp {
            cores,
            l2: L2::new(&cfg),
            pf,
            now: 0,
            evict_scratch: Vec::new(),
        }
    }

    /// Runs until every core has retired `instructions_per_core`
    /// instructions, then reports.
    ///
    /// # Panics
    ///
    /// Panics if the simulation exceeds a generous cycle budget
    /// (1000 cycles per instruction), which indicates a deadlock bug.
    pub fn run(&mut self, instructions_per_core: u64) -> SimReport {
        let start_cycle = self.now;
        for core in &mut self.cores {
            let quota = core.retired() + instructions_per_core;
            core.set_quota(quota);
        }
        let budget = start_cycle + instructions_per_core.saturating_mul(1000).max(1_000_000);
        while !self.cores.iter().all(Core::finished) {
            self.tick();
            assert!(
                self.now < budget,
                "simulation exceeded cycle budget at cycle {} — deadlock?",
                self.now
            );
        }
        self.report()
    }

    /// Runs a warmup phase (training caches, predictors, and TIFS logs),
    /// discards its statistics, then measures `measure_per_core`
    /// instructions. This mirrors the paper's warmed-cache methodology —
    /// compulsory misses are not what TIFS targets.
    pub fn run_with_warmup(&mut self, warmup_per_core: u64, measure_per_core: u64) -> SimReport {
        if warmup_per_core > 0 {
            self.run(warmup_per_core);
            let now = self.now;
            for core in &mut self.cores {
                core.reset_stats(now);
            }
            self.l2.reset_stats(now);
            self.pf.reset_counters();
        }
        // `cycles` covers only the measured window: per-core counters are
        // already epoch-relative, and charging the warmup phase here too
        // would deflate every report-level cycles/IPC figure.
        let measure_start = self.now;
        let mut report = self.run(measure_per_core);
        report.cycles = self.now - measure_start;
        report
    }

    /// Advances the whole system one cycle.
    ///
    /// Cores are stepped in fixed ascending core order, and the
    /// prefetcher tick follows them, every cycle. Shared structures that
    /// arbitrate between cores within a cycle (the L2 banks, and the
    /// shared-metadata ports of [`MetadataPorts`](crate::metadata::MetadataPorts))
    /// inherit that order as their arbitration order, which is what keeps
    /// contended runs bit-reproducible at any host thread count.
    pub fn tick(&mut self) {
        for core in &mut self.cores {
            core.tick(self.now, &mut self.l2, self.pf.as_mut());
        }
        // Deliver evictions raised by this cycle's core requests *before*
        // the prefetcher tick: Index-Table invalidations must not lag the
        // evicting access, or the prefetcher acts on stale residency.
        self.deliver_evictions();
        {
            let mut ctx = PrefetchCtx {
                now: self.now,
                core: usize::MAX,
                l2: &mut self.l2,
            };
            self.pf.tick(&mut ctx);
        }
        // The prefetcher's own requests can evict too.
        self.deliver_evictions();
        self.now += 1;
    }

    /// Hands this cycle's L2 evictions to the prefetcher in raise order,
    /// recycling one scratch buffer so eviction-bearing cycles don't
    /// allocate.
    fn deliver_evictions(&mut self) {
        self.l2.swap_evictions(&mut self.evict_scratch);
        for i in 0..self.evict_scratch.len() {
            self.pf.on_l2_evict(self.evict_scratch[i]);
        }
        self.evict_scratch.clear();
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Enables or disables L2 event recording: with it on, every accepted
    /// L2 request is timestamped into the report's `l2_events` timeline
    /// (warmup events are discarded with the other warmup statistics).
    /// The contention-aware sharded execution mode turns this on per
    /// shard and convolves the recorded timelines post hoc.
    pub fn set_record_l2_events(&mut self, on: bool) {
        self.l2.set_record_events(on);
    }

    /// Builds the report for the run so far.
    pub fn report(&self) -> SimReport {
        SimReport {
            cores: self.cores.iter().map(|c| c.stats().clone()).collect(),
            l2: self.l2.stats().clone(),
            cycles: self.now,
            prefetcher: self.pf.counters(),
            l2_events: self.l2.events().to_vec(),
            l2_warm_blocks: self.l2.warm_blocks().to_vec(),
        }
    }
}

impl std::fmt::Debug for Cmp<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cmp")
            .field("now", &self.now)
            .field("cores", &self.cores.len())
            .field("prefetcher", &self.pf.name())
            .finish()
    }
}
