//! Branch prediction structures (paper Table II: hybrid predictor with
//! 16K-entry gShare and 16K-entry bimodal tables).
//!
//! The core uses a [`HybridPredictor`] for conditional branches, a
//! [`ReturnAddressStack`] for returns, and a [`TargetBuffer`] for indirect
//! targets. Fetch-directed prefetching (FDIP) instantiates the same
//! structures to explore ahead of the fetch unit.

use tifs_trace::Addr;

/// Two-bit saturating counter table indexed by a hash.
#[derive(Clone, Debug)]
struct CounterTable {
    counters: Vec<u8>,
    mask: u64,
}

impl CounterTable {
    fn new(entries: usize) -> CounterTable {
        assert!(
            entries.is_power_of_two(),
            "table size must be a power of two"
        );
        CounterTable {
            counters: vec![2; entries], // weakly taken
            mask: (entries - 1) as u64,
        }
    }

    #[inline]
    fn predict(&self, index: u64) -> bool {
        self.counters[(index & self.mask) as usize] >= 2
    }

    #[inline]
    fn update(&mut self, index: u64, taken: bool) {
        let c = &mut self.counters[(index & self.mask) as usize];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }
}

/// Hybrid gShare + bimodal predictor with a chooser (Table II).
///
/// # Example
///
/// ```
/// use tifs_sim::bpred::HybridPredictor;
/// use tifs_trace::Addr;
///
/// let mut bp = HybridPredictor::table2();
/// let pc = Addr(0x4000);
/// for _ in 0..16 {
///     let _ = bp.predict(pc);
///     bp.update(pc, true);
/// }
/// assert!(bp.predict(pc), "strongly-taken branch predicted taken");
/// ```
#[derive(Clone, Debug)]
pub struct HybridPredictor {
    bimodal: CounterTable,
    gshare: CounterTable,
    chooser: CounterTable,
    history: u64,
    history_bits: u32,
}

impl HybridPredictor {
    /// The paper's 16K gShare + 16K bimodal configuration.
    pub fn table2() -> HybridPredictor {
        HybridPredictor::new(16 * 1024, 14)
    }

    /// Custom-sized predictor.
    pub fn new(entries: usize, history_bits: u32) -> HybridPredictor {
        HybridPredictor {
            bimodal: CounterTable::new(entries),
            gshare: CounterTable::new(entries),
            chooser: CounterTable::new(entries),
            history: 0,
            history_bits,
        }
    }

    #[inline]
    fn pc_index(pc: Addr) -> u64 {
        pc.0 >> 2
    }

    #[inline]
    fn gshare_index(&self, pc: Addr) -> u64 {
        Self::pc_index(pc) ^ (self.history & ((1 << self.history_bits) - 1))
    }

    /// Predicts the direction of the conditional branch at `pc`.
    pub fn predict(&self, pc: Addr) -> bool {
        if self.chooser.predict(Self::pc_index(pc)) {
            self.gshare.predict(self.gshare_index(pc))
        } else {
            self.bimodal.predict(Self::pc_index(pc))
        }
    }

    /// Trains with the resolved outcome and shifts global history.
    pub fn update(&mut self, pc: Addr, taken: bool) {
        let pi = Self::pc_index(pc);
        let gi = self.gshare_index(pc);
        let bp = self.bimodal.predict(pi);
        let gp = self.gshare.predict(gi);
        // Chooser trains toward whichever component was correct.
        if bp != gp {
            self.chooser.update(pi, gp == taken);
        }
        self.bimodal.update(pi, taken);
        self.gshare.update(gi, taken);
        self.history = (self.history << 1) | u64::from(taken);
    }

    /// Current global history (FDIP snapshots this to explore ahead).
    pub fn history(&self) -> u64 {
        self.history
    }

    /// Predicts with an explicit speculative history (FDIP lookahead).
    pub fn predict_with_history(&self, pc: Addr, history: u64) -> bool {
        if self.chooser.predict(Self::pc_index(pc)) {
            let gi = Self::pc_index(pc) ^ (history & ((1 << self.history_bits) - 1));
            self.gshare.predict(gi)
        } else {
            self.bimodal.predict(Self::pc_index(pc))
        }
    }
}

/// Return address stack.
#[derive(Clone, Debug)]
pub struct ReturnAddressStack {
    stack: Vec<Addr>,
    capacity: usize,
}

impl ReturnAddressStack {
    /// Creates a RAS with the given depth.
    pub fn new(capacity: usize) -> ReturnAddressStack {
        ReturnAddressStack {
            stack: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Pushes a return address (on call); the oldest entry is dropped at
    /// capacity.
    pub fn push(&mut self, addr: Addr) {
        if self.stack.len() == self.capacity {
            self.stack.remove(0);
        }
        self.stack.push(addr);
    }

    /// Pops the predicted return target.
    pub fn pop(&mut self) -> Option<Addr> {
        self.stack.pop()
    }

    /// Current depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }
}

/// Branch target buffer for indirect targets: a direct-mapped map from
/// branch PC to its most recent target.
#[derive(Clone, Debug)]
pub struct TargetBuffer {
    entries: Vec<Option<(u64, Addr)>>,
    mask: u64,
}

impl TargetBuffer {
    /// Creates a BTB with `entries` (power of two) slots.
    pub fn new(entries: usize) -> TargetBuffer {
        assert!(entries.is_power_of_two());
        TargetBuffer {
            entries: vec![None; entries],
            mask: (entries - 1) as u64,
        }
    }

    /// Predicted target for the branch at `pc`, if known.
    pub fn predict(&self, pc: Addr) -> Option<Addr> {
        let idx = ((pc.0 >> 2) & self.mask) as usize;
        match self.entries[idx] {
            Some((tag, target)) if tag == pc.0 => Some(target),
            _ => None,
        }
    }

    /// Records the resolved target.
    pub fn update(&mut self, pc: Addr, target: Addr) {
        let idx = ((pc.0 >> 2) & self.mask) as usize;
        self.entries[idx] = Some((pc.0, target));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn biased_branch_learns() {
        let mut bp = HybridPredictor::table2();
        let pc = Addr(0x1000);
        for _ in 0..8 {
            bp.update(pc, false);
        }
        assert!(!bp.predict(pc));
        for _ in 0..8 {
            bp.update(pc, true);
        }
        assert!(bp.predict(pc));
    }

    #[test]
    fn gshare_learns_alternating_pattern() {
        // Pattern T N T N ... is history-predictable; accuracy should far
        // exceed 50% once trained.
        let mut bp = HybridPredictor::table2();
        let pc = Addr(0x2000);
        let mut correct = 0;
        let n = 2000;
        for i in 0..n {
            let taken = i % 2 == 0;
            if bp.predict(pc) == taken {
                correct += 1;
            }
            bp.update(pc, taken);
        }
        let acc = correct as f64 / n as f64;
        assert!(acc > 0.9, "alternating accuracy {acc}");
    }

    #[test]
    fn random_branch_unpredictable() {
        let mut bp = HybridPredictor::table2();
        let pc = Addr(0x3000);
        let mut x = 0x12345678u64;
        let mut correct = 0;
        let n = 4000;
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let taken = x & 1 == 0;
            if bp.predict(pc) == taken {
                correct += 1;
            }
            bp.update(pc, taken);
        }
        let acc = correct as f64 / n as f64;
        assert!(
            (0.35..0.65).contains(&acc),
            "random branch accuracy should be ~0.5, got {acc}"
        );
    }

    #[test]
    fn ras_lifo_and_overflow() {
        let mut ras = ReturnAddressStack::new(2);
        ras.push(Addr(1));
        ras.push(Addr(2));
        ras.push(Addr(3)); // evicts 1
        assert_eq!(ras.pop(), Some(Addr(3)));
        assert_eq!(ras.pop(), Some(Addr(2)));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn btb_tags_disambiguate() {
        let mut btb = TargetBuffer::new(16);
        btb.update(Addr(0x40), Addr(0x1000));
        assert_eq!(btb.predict(Addr(0x40)), Some(Addr(0x1000)));
        // Aliasing PC with a different tag must miss, not mispredict.
        assert_eq!(btb.predict(Addr(0x40 + 16 * 4)), None);
        btb.update(Addr(0x40), Addr(0x2000));
        assert_eq!(btb.predict(Addr(0x40)), Some(Addr(0x2000)));
    }
}
