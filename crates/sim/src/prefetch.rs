//! The instruction-prefetcher interface the CMP timing model drives.
//!
//! One prefetcher object serves the whole CMP (TIFS shares its Index Table
//! across cores; per-core state lives inside the implementation, keyed by
//! `ctx.core`). The next-line prefetcher is part of the base fetch unit and
//! is *not* expressed through this trait: implementations only see block
//! fetches, and supply blocks the base system would have missed.

use tifs_trace::{BlockAddr, FetchRecord};

use crate::l2::L2;

/// Outcome of the base system's L1-I lookup for a block transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FetchKind {
    /// Present in the L1 (includes completed next-line fills).
    L1Hit,
    /// Covered by an in-flight next-line prefetch (counted as an L1 hit in
    /// the paper's accounting); the prefetcher may supply the block
    /// earlier than the fill, but this is not a stream-lookup trigger.
    NextLineInFlight,
    /// A genuine L1-I miss (missed by next-line too).
    Miss,
}

/// Context handed to every prefetcher callback.
pub struct PrefetchCtx<'a> {
    /// Current cycle.
    pub now: u64,
    /// Core performing the access.
    pub core: usize,
    /// The shared L2, for issuing prefetch/IML requests.
    pub l2: &'a mut L2,
}

/// An instruction prefetcher evaluated on top of the base system.
///
/// All methods have defaults so trivial prefetchers implement only
/// [`on_block_fetch`](IPrefetcher::on_block_fetch).
pub trait IPrefetcher {
    /// Short display name ("tifs", "fdip", ...).
    fn name(&self) -> &'static str;

    /// Observes one committed instruction at fetch time (FDIP uses this to
    /// follow/redirect its exploration; TIFS ignores it).
    fn on_fetch_instr(&mut self, _ctx: &mut PrefetchCtx<'_>, _rec: &FetchRecord) {}

    /// The fetch unit transitioned to `block`; `kind` reports the base
    /// system's outcome. On a miss (or an in-flight next-line cover) the
    /// prefetcher may supply the block by returning the cycle its copy is
    /// (or will be) ready; returning `None` lets the base system proceed.
    fn on_block_fetch(
        &mut self,
        ctx: &mut PrefetchCtx<'_>,
        block: BlockAddr,
        kind: FetchKind,
    ) -> Option<u64>;

    /// An instruction retired whose fetch block had missed L1. `supplied`
    /// is true when this prefetcher provided the block (an SVB hit). TIFS
    /// logs misses at retirement (paper Section 5.1.1).
    fn on_retire_fetch_miss(
        &mut self,
        _ctx: &mut PrefetchCtx<'_>,
        _block: BlockAddr,
        _supplied: bool,
    ) {
    }

    /// An instruction block was evicted from L2 (embedded Index-Table
    /// pointers die with their tags).
    fn on_l2_evict(&mut self, _block: BlockAddr) {}

    /// `ctx.core` context-switched to a different program: any prediction
    /// state derived from the outgoing program's fetch stream (history
    /// logs, index pointers, in-flight streams, exploration cursors) must
    /// be invalidated for that core. Cache contents are untouched — a
    /// flush is a metadata event; the L1/L2 arrays keep their blocks and
    /// pay their own (modelled) misses.
    fn on_flush(&mut self, _ctx: &mut PrefetchCtx<'_>) {}

    /// Once-per-cycle housekeeping (stream rate matching, queue draining).
    fn tick(&mut self, _ctx: &mut PrefetchCtx<'_>) {}

    /// Implementation-specific counters for reports (name, value).
    fn counters(&self) -> Vec<(String, f64)> {
        Vec::new()
    }

    /// Zeroes implementation counters, preserving predictor state (used to
    /// discard warmup from measurements).
    fn reset_counters(&mut self) {}
}

/// The base system's "no additional prefetcher": next-line only.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullPrefetcher;

impl IPrefetcher for NullPrefetcher {
    fn name(&self) -> &'static str {
        "next-line"
    }

    fn on_block_fetch(
        &mut self,
        _ctx: &mut PrefetchCtx<'_>,
        _block: BlockAddr,
        _kind: FetchKind,
    ) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    #[test]
    fn null_prefetcher_never_supplies() {
        let mut l2 = L2::new(&SystemConfig::table2());
        let mut ctx = PrefetchCtx {
            now: 0,
            core: 0,
            l2: &mut l2,
        };
        let mut p = NullPrefetcher;
        assert_eq!(
            p.on_block_fetch(&mut ctx, BlockAddr(1), FetchKind::Miss),
            None
        );
        assert_eq!(p.name(), "next-line");
        assert!(p.counters().is_empty());
    }
}
