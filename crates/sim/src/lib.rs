//! Cycle-level CMP simulator for the TIFS reproduction.
//!
//! Models the paper's Table II system: four 4-wide out-of-order cores with
//! decoupled front ends, split 64 KB 2-way L1 caches with next-line
//! instruction prefetchers, a shared 8 MB 16-bank L2 with
//! independently-scheduled pipelines and 64 MSHRs, and latency/
//! bandwidth-limited memory.
//!
//! * [`config`] — Table II parameters;
//! * [`cache`] — set-associative LRU caches;
//! * [`collections`] — deterministic hot-path structures: structural
//!   drain-order fill queues and open-addressed block maps;
//! * [`l2`] — banked L2 + memory timing, traffic accounting (Figure 12);
//! * [`bpred`] — hybrid gShare/bimodal predictor, RAS, BTB;
//! * [`core`] — fetch unit, pre-dispatch queue, ROB back end;
//! * [`cmp`] — the whole chip, stepped cycle by cycle;
//! * [`prefetch`] — the [`IPrefetcher`] interface
//!   TIFS and the baselines implement;
//! * [`metadata`] — port arbitration for chip-shared prefetcher
//!   metadata (the sharing-study timing model);
//! * [`miss_trace`](mod@miss_trace) — the functional fetch model producing the L1-I miss
//!   traces the opportunity analyses consume;
//! * [`stats`] — per-core and whole-run reports.
//!
//! # Quickstart
//!
//! ```
//! use tifs_sim::cmp::Cmp;
//! use tifs_sim::config::SystemConfig;
//! use tifs_sim::prefetch::NullPrefetcher;
//! use tifs_trace::workload::{Workload, WorkloadSpec};
//!
//! let workload = Workload::build(&WorkloadSpec::tiny_test(), 7);
//! let cfg = SystemConfig::single_core();
//! let streams: Vec<_> = (0..cfg.num_cores)
//!     .map(|c| Box::new(workload.walker(c)) as Box<dyn Iterator<Item = _>>)
//!     .collect();
//! let mut cmp = Cmp::new(cfg, streams, Box::new(NullPrefetcher));
//! let report = cmp.run(10_000);
//! assert!(report.aggregate_ipc() > 0.0);
//! ```

#![forbid(unsafe_code)]

pub mod bpred;
pub mod cache;
pub mod cmp;
pub mod collections;
pub mod config;
pub mod core;
pub mod l2;
pub mod metadata;
pub mod miss_trace;
pub mod prefetch;
pub mod stats;

pub use cmp::Cmp;
pub use config::SystemConfig;
pub use l2::{L2ReqKind, L2Response, L2Stats, L2};
pub use metadata::MetadataPorts;
pub use miss_trace::{miss_trace, miss_trace_with_model, FunctionalFetchModel};
pub use prefetch::{IPrefetcher, NullPrefetcher, PrefetchCtx};
pub use stats::{CoreStats, SimReport};
