//! # TIFS — Temporal Instruction Fetch Streaming
//!
//! A full Rust reproduction of *Temporal Instruction Fetch Streaming*
//! (Ferdman, Wenisch, Ailamaki, Falsafi, Moshovos — MICRO 2008): an
//! instruction prefetcher that records recurring L1-I miss sequences in
//! Instruction Miss Logs and replays them through Streamed Value Buffers,
//! plus every substrate the paper's evaluation needs — a synthetic
//! commercial-workload generator, a cycle-level CMP simulator, baseline
//! prefetchers (next-line, FDIP, discontinuity, stride), and the SEQUITUR
//! opportunity analyses.
//!
//! This crate re-exports the workspace members:
//!
//! * [`trace`] — workload generation, instruction records, trace codec;
//! * [`sim`] — caches, banked L2, cycle-level cores, the CMP harness;
//! * [`prefetch`] — baseline prefetchers and branch predictors;
//! * [`core`] — the TIFS mechanism (IML, Index Table, SVB);
//! * [`sequitur`] — grammar inference and stream analyses;
//! * [`experiments`] — drivers reproducing every table and figure.
//!
//! # Quickstart
//!
//! ```
//! use tifs::core::{TifsConfig, TifsPrefetcher};
//! use tifs::sim::{cmp::Cmp, config::SystemConfig};
//! use tifs::trace::workload::{Workload, WorkloadSpec};
//!
//! let workload = Workload::build(&WorkloadSpec::tiny_test(), 42);
//! let cfg = SystemConfig::single_core();
//! let streams: Vec<_> = (0..cfg.num_cores)
//!     .map(|c| Box::new(workload.walker(c)) as Box<dyn Iterator<Item = _>>)
//!     .collect();
//! let tifs = TifsPrefetcher::new(cfg.num_cores, TifsConfig::virtualized());
//! let mut cmp = Cmp::new(cfg, streams, Box::new(tifs));
//! let report = cmp.run(20_000);
//! assert!(report.aggregate_ipc() > 0.0);
//! ```

#![forbid(unsafe_code)]

pub use tifs_core as core;
pub use tifs_experiments as experiments;
pub use tifs_prefetch as prefetch;
pub use tifs_sequitur as sequitur;
pub use tifs_sim as sim;
pub use tifs_trace as trace;
